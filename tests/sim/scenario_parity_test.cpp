// Scenario-subsystem parity pins: runs that do not opt into the tenant /
// scenario machinery must stay byte-identical to the pre-scenario engine,
// and accounting-only tenancy must observe the simulation without
// perturbing it.  These are the "scenario=none paths unchanged" guarantees
// the subsystem was built under.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/report.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.seed = 17;
  cfg.num_vls = 4;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  return cfg;
}

SimResult run_once(const Subnet& subnet, const SimConfig& cfg,
                   const TrafficConfig& traffic) {
  return Simulation::open_loop(subnet, cfg, traffic, /*offered_load=*/0.5)
      .run();
}

TEST(ScenarioParity, AccountingOnlyTenancyDoesNotPerturbTheRun) {
  // Same fabric, same traffic partition; the only delta is whether the
  // engine keeps per-tenant books.  Every non-tenant observable must be
  // byte-identical: accounting is a read-only tap on accumulate_delivery.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 99};
  traffic.tenants = 4;

  const SimConfig off = small_cfg();  // tenants.count = 0: subsystem off
  SimConfig on = small_cfg();
  on.tenants.count = 4;  // accounting on, bind_vls off

  const SimResult r_off = run_once(subnet, off, traffic);
  SimResult r_on = run_once(subnet, on, traffic);
  ASSERT_EQ(r_on.tenants.size(), 4u);
  EXPECT_TRUE(r_off.tenants.empty());

  // Strip the tenant block and the JSON blobs must match byte for byte.
  r_on.tenants.clear();
  r_on.tenant_jain_fairness_index = 0.0;
  EXPECT_EQ(to_json(r_on), to_json(r_off));
}

TEST(ScenarioParity, TenantBooksSumToTheWindowTotals) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 23};
  traffic.tenants = 4;
  SimConfig cfg = small_cfg();
  cfg.tenants.count = 4;

  const SimResult r = run_once(subnet, cfg, traffic);
  std::uint64_t delivered = 0;
  for (const TenantStats& t : r.tenants) {
    delivered += t.delivered_pkts;
    EXPECT_GT(t.delivered_pkts, 0u);
    EXPECT_GT(t.accepted_bytes_per_ns, 0.0);
    EXPECT_GT(t.avg_latency_ns, 0.0);
  }
  EXPECT_EQ(delivered, r.packets_measured);
  EXPECT_GT(r.tenant_jain_fairness_index, 0.0);
  EXPECT_LE(r.tenant_jain_fairness_index, 1.0 + 1e-12);
}

TEST(ScenarioParity, VlBindingPinsEachTenantToItsLane) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 31};
  traffic.tenants = 4;
  SimConfig cfg = small_cfg();
  cfg.tenants.count = 4;
  cfg.tenants.bind_vls = true;

  const SimResult r = run_once(subnet, cfg, traffic);
  ASSERT_EQ(r.delivered_per_vl.size(), 4u);
  // With 4 tenants on 4 VLs every lane carries exactly one tenant's
  // packets, so all four lanes are active.
  for (const std::uint64_t n : r.delivered_per_vl) EXPECT_GT(n, 0u);
  const std::uint64_t on_vls = std::accumulate(
      r.delivered_per_vl.begin(), r.delivered_per_vl.end(), std::uint64_t{0});
  EXPECT_EQ(on_vls, r.packets_measured);
}

TEST(ScenarioParity, ShardedTenantAccountingMatchesSequential) {
  // Tenant books are fed from the canonical delivery-log replay, so the
  // sharded engine must reproduce them exactly.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 47};
  traffic.tenants = 4;
  SimConfig cfg = small_cfg();
  cfg.tenants.count = 4;
  cfg.event_order = EventOrder::kCanonical;

  const SimResult seq = run_once(subnet, cfg, traffic);
  const SimResult sharded =
      ShardedSimulation::open_loop(subnet, cfg, traffic, 0.5,
                                   {/*shards=*/2, /*threads=*/1})
          .run();
  EXPECT_EQ(to_json(seq), to_json(sharded));
}

}  // namespace
}  // namespace mlid

// Post-run diagnostics: the stall report and link loads across modes.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

TEST(StallReport, EmptyAfterADrainedBurst) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.seed = 51;
  Simulation sim = Simulation::burst(subnet, cfg,
                                     all_to_all_personalized(8, 256));
  sim.run_to_completion();
  EXPECT_TRUE(sim.stall_report().empty());
}

TEST(StallReport, DescribesInFlightStateAfterACutOffRun) {
  // An open-loop run stops mid-activity at end_time: packets are still
  // sitting in output queues and the report names them.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 51;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kCentric, 1.0, 0, 5},
                                         0.9);
  sim.run();
  const std::string report = sim.stall_report();
  EXPECT_FALSE(report.empty());
  EXPECT_NE(report.find("out_q="), std::string::npos);
  EXPECT_NE(report.find("credits="), std::string::npos);
  EXPECT_NE(report.find("dlid="), std::string::npos);
}

TEST(StallReport, LinkLoadsAvailableInBurstMode) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.seed = 51;
  Simulation sim = Simulation::burst(subnet, cfg, gather_to(8, 0, 1024));
  const BurstResult r = sim.run_to_completion();
  std::uint64_t total_tx = 0;
  for (const LinkLoad& load : sim.link_loads()) total_tx += load.packets_tx;
  // Each of the 7*4 segments crossed at least two directed links.
  EXPECT_GE(total_tx, 2 * r.packets);
}

}  // namespace
}  // namespace mlid

// Engine-level congestion-control behavior: FECN marking thresholds, the
// BECN return loop, CCT throttling, telemetry consistency, and
// determinism of the whole control loop.
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

// A hot-spot scenario that reliably forms a congestion tree: everyone
// hammers node 0 with 40% of their traffic at a load well past the hot
// terminal link's capacity.
TrafficConfig hot_traffic() { return {TrafficKind::kCentric, 0.4, 0, 9}; }

SimConfig cc_window() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 30'000;
  cfg.seed = 3;
  cfg.cc.enabled = true;
  return cfg;
}

TEST(CongestionControl, HotSpotDrivesTheFullControlLoop) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6).run();
  EXPECT_TRUE(r.cc.enabled);
  // Every stage of the loop fired: marks, echoes, throttles, decay.
  EXPECT_GT(r.cc.fecn_marked, 0u);
  EXPECT_EQ(r.cc.fecn_marked, r.cc.fecn_depth_marks + r.cc.fecn_stall_marks);
  EXPECT_GT(r.cc.becn_sent, 0u);
  EXPECT_GT(r.cc.becn_received, 0u);
  EXPECT_LE(r.cc.becn_received, r.cc.becn_sent);  // some still in flight
  EXPECT_GT(r.cc.throttled_pkts, 0u);
  EXPECT_GT(r.cc.throttled_ns_total, 0u);
  EXPECT_GE(r.cc.max_node_throttled_ns, 1u);
  EXPECT_LE(r.cc.max_node_throttled_ns, r.cc.throttled_ns_total);
  EXPECT_GT(r.cc.cct_timer_fires, 0u);
  EXPECT_GT(r.cc.peak_cct_index, 0u);
  // A BECN can only echo a delivered FECN mark.
  EXPECT_LE(r.cc.becn_sent, r.cc.fecn_marked);
  // The index histogram records exactly one entry per BECN applied.
  std::uint64_t hist_total = 0;
  for (const std::uint64_t v : r.cc.cct_index_hist) hist_total += v;
  EXPECT_EQ(hist_total, r.cc.becn_received);
}

TEST(CongestionControl, DisabledRunReportsAnEmptyCcBlock) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = cc_window();
  cfg.cc.enabled = false;
  const SimResult r =
      Simulation::open_loop(subnet, cfg, hot_traffic(), 0.6).run();
  EXPECT_FALSE(r.cc.enabled);
  EXPECT_EQ(r.cc.fecn_marked, 0u);
  EXPECT_EQ(r.cc.throttled_pkts, 0u);
  EXPECT_TRUE(r.cc.cct_index_hist.empty());
}

TEST(CongestionControl, DepthThresholdOneMarksAggressively) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  // threshold 1: every packet routed through a non-stalled switch output
  // joins a backlog of at least itself, so marking is near-universal.
  SimConfig eager = cc_window();
  eager.cc.fecn_threshold_pkts = 1;
  SimConfig lazy = cc_window();
  lazy.cc.fecn_threshold_pkts = 1'000'000;
  lazy.cc.fecn_stall_ns = 1'000'000'000;
  const SimResult r_eager =
      Simulation::open_loop(subnet, eager, hot_traffic(), 0.6).run();
  const SimResult r_lazy =
      Simulation::open_loop(subnet, lazy, hot_traffic(), 0.6).run();
  EXPECT_GT(r_eager.cc.fecn_depth_marks, 0u);
  EXPECT_EQ(r_lazy.cc.fecn_marked, 0u);
  EXPECT_GT(r_eager.cc.fecn_marked, r_lazy.cc.fecn_marked);
}

TEST(CongestionControl, StallMarkingFiresWithoutDepthMarking) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  // Depth marking off the table; only the credit-stall path can mark, and
  // a congestion tree at this load stalls heads for far longer than 1 us.
  SimConfig cfg = cc_window();
  cfg.cc.fecn_threshold_pkts = 1'000'000;
  cfg.cc.fecn_stall_ns = 1'000;
  const SimResult r =
      Simulation::open_loop(subnet, cfg, hot_traffic(), 0.6).run();
  EXPECT_GT(r.cc.fecn_stall_marks, 0u);
  EXPECT_EQ(r.cc.fecn_depth_marks, 0u);
}

TEST(CongestionControl, ThrottlingThrottlesTheHotDestination) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = cc_window();
  cfg.cc.becn_increase = 4;
  cfg.cc.cct_quantum_ns = 600;
  const SimResult off = Simulation::open_loop(subnet, [] {
                          SimConfig c = cc_window();
                          c.cc.enabled = false;
                          return c;
                        }(), hot_traffic(), 0.6)
                            .run();
  const SimResult on =
      Simulation::open_loop(subnet, cfg, hot_traffic(), 0.6).run();
  // Throttling redistributes service from the congestion tree to its
  // victims: fairness must improve in this heavily hot-spotted scenario.
  EXPECT_GT(on.jain_fairness_index, off.jain_fairness_index);
  EXPECT_GT(on.cc.throttled_pkts, 0u);
}

TEST(CongestionControl, VictimHotSplitAccountsEveryMeasuredPacket) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6).run();
  EXPECT_EQ(r.victim_packets + r.hot_packets, r.packets_measured);
  EXPECT_GT(r.victim_packets, 0u);
  EXPECT_GT(r.hot_packets, 0u);
  EXPECT_GT(r.victim_p99_latency_ns, 0.0);
  EXPECT_GT(r.hot_p99_latency_ns, 0.0);
  // Uniform traffic has no hot node: the split stays zeroed.
  const TrafficConfig uniform{TrafficKind::kUniform, 0.2, 0, 9};
  const SimResult u =
      Simulation::open_loop(subnet, cc_window(), uniform, 0.6).run();
  EXPECT_EQ(u.victim_packets, 0u);
  EXPECT_EQ(u.hot_packets, 0u);
}

TEST(CongestionControl, TelemetryLinkMarksSumToTheGlobalCount) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6);
  const SimResult r = sim.run();
  ASSERT_TRUE(r.telemetry);
  EXPECT_EQ(r.link_summary.total_fecn_marks, r.cc.fecn_marked);
  std::uint64_t from_links = 0;
  for (const LinkStats& link : sim.link_stats()) {
    std::uint64_t from_vls = 0;
    for (const VlLinkStats& vl : link.vls) from_vls += vl.fecn_marks;
    EXPECT_EQ(link.fecn_marks, from_vls);
    from_links += link.fecn_marks;
  }
  EXPECT_EQ(from_links, r.cc.fecn_marked);
}

TEST(CongestionControl, TelemetryOffLeavesCcBehaviorBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig with = cc_window();
  SimConfig without = cc_window();
  without.telemetry = false;
  const SimResult a =
      Simulation::open_loop(subnet, with, hot_traffic(), 0.6).run();
  const SimResult b =
      Simulation::open_loop(subnet, without, hot_traffic(), 0.6).run();
  // CC decisions (marking, throttling) must not depend on telemetry.
  EXPECT_EQ(a.cc.fecn_marked, b.cc.fecn_marked);
  EXPECT_EQ(a.cc.becn_received, b.cc.becn_received);
  EXPECT_EQ(a.cc.throttled_pkts, b.cc.throttled_pkts);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
}

TEST(CongestionControl, CcRunsAreDeterministic) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "SLID");
  const SimResult a =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6).run();
  const SimResult b =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6).run();
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_GT(a.cc.fecn_marked, 0u);
}

TEST(CongestionControl, PerNodeStatsRollUpToTheSummary) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim =
      Simulation::open_loop(subnet, cc_window(), hot_traffic(), 0.6);
  const SimResult r = sim.run();
  std::uint64_t becn_rx = 0, throttled = 0, throttled_ns = 0;
  std::uint16_t peak = 0;
  for (const CcNodeStats& s : sim.cc_node_stats()) {
    becn_rx += s.becn_received;
    throttled += s.throttled_pkts;
    throttled_ns += s.throttled_ns;
    peak = std::max(peak, s.peak_cct_index);
  }
  EXPECT_EQ(becn_rx, r.cc.becn_received);
  EXPECT_EQ(throttled, r.cc.throttled_pkts);
  EXPECT_EQ(throttled_ns, r.cc.throttled_ns_total);
  EXPECT_EQ(peak, r.cc.peak_cct_index);
}

}  // namespace
}  // namespace mlid

// Credit-based flow control: backpressure bounds in-flight packets, buffer
// depth changes behaviour in the expected direction, and nothing is lost.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window() {
  SimConfig cfg;
  cfg.warmup_ns = 10'000;
  cfg.measure_ns = 50'000;
  cfg.seed = 33;
  return cfg;
}

TEST(FlowControl, NoPacketIsEverDropped) {
  // Credits reserve the downstream slot before transmission, so even a
  // saturated hot-spot loses nothing.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  for (double load : {0.3, 0.9}) {
    for (auto kind : {TrafficKind::kUniform, TrafficKind::kCentric}) {
      Simulation sim = Simulation::open_loop(subnet, window(),
                                             {kind, 0.2, 0, 9}, load);
      const SimResult r = sim.run();
      EXPECT_EQ(r.packets_dropped, 0u);
      EXPECT_LE(r.packets_delivered, r.packets_generated);
      EXPECT_GT(r.packets_delivered, 0u);
    }
  }
}

TEST(FlowControl, DeeperBuffersRaiseHotSpotThroughput) {
  // The 1-packet credit loop leaves a (t_r + 2 t_fly)-sized bubble per
  // packet on a saturated link; deeper input buffers hide it.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig shallow = window();
  SimConfig deep = window();
  deep.in_buf_pkts = 4;
  deep.out_buf_pkts = 4;
  const TrafficConfig traffic{TrafficKind::kCentric, 1.0, 0, 9};
  const double t_shallow =
      Simulation::open_loop(subnet, shallow, traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  const double t_deep =
      Simulation::open_loop(subnet, deep, traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  EXPECT_GT(t_deep, t_shallow);
}

TEST(FlowControl, BackpressureKeepsSourceQueuesBoundedAtLowLoad) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kUniform, 0, 0, 9}, 0.1);
  const SimResult r = sim.run();
  EXPECT_LE(r.max_source_queue_pkts, 4u);
}

TEST(FlowControl, SaturationGrowsSourceQueuesNotTheNetwork) {
  // Past saturation the network holds a bounded number of packets (credits
  // cap per-hop occupancy); the surplus accumulates in source queues.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kCentric, 1.0, 0, 9},
                                         1.0);
  const SimResult r = sim.run();
  EXPECT_GT(r.max_source_queue_pkts, 50u);
  // In-network packets at end = generated - delivered - still queued; the
  // engine cannot report queue occupancy directly, but the physical bound
  // is (#links * (in+out buffers) * VLs); sanity-check via counts.
  const std::uint64_t in_flight_bound =
      static_cast<std::uint64_t>(fabric.fabric().num_links()) * 2u * 2u + 64;
  EXPECT_LE(r.packets_generated - r.packets_delivered,
            in_flight_bound + r.max_source_queue_pkts *
                                  fabric.params().num_nodes());
}

TEST(FlowControl, ZeroFlyingTimeStillConserves) {
  SimConfig cfg = window();
  cfg.flying_time_ns = 0;
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kUniform, 0, 0, 9}, 0.5);
  const SimResult r = sim.run();
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_GT(r.packets_measured, 0u);
}

}  // namespace
}  // namespace mlid

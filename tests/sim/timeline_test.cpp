// The time-resolved observability layer: interval sampler, decimation
// policy, flight recorder and control-plane trace.  The headline contract
// is the first test group: turning everything on changes NOTHING about the
// simulation result.
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window(SimTime warmup = 2'000, SimTime measure = 20'000) {
  SimConfig cfg;
  cfg.warmup_ns = warmup;
  cfg.measure_ns = measure;
  cfg.seed = 11;
  return cfg;
}

SimConfig all_telemetry_on(SimConfig cfg) {
  cfg.sample_interval_ns = 1'000;
  cfg.trace_packets = 32;
  cfg.trace_stride = 4;
  cfg.trace_control = true;
  cfg.flight_recorder_depth = 16;
  return cfg;
}

TEST(Timeline, OffByDefault) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kUniform, 0, 0, 3},
                                         0.3);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.timeline.enabled());
  EXPECT_TRUE(r.timeline.samples.empty());
  EXPECT_FALSE(sim.flight_dump().valid());
  EXPECT_TRUE(sim.control_trace().empty());
}

TEST(Timeline, FullTelemetryLeavesTheResultBitIdentical) {
  // Observability is counters-only: the instrumented run must reproduce
  // the plain run's SimResult field for field.  Comparison goes through
  // the JSON export with the timeline scrubbed back out.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0, 0, 3};
  const SimResult plain =
      Simulation::open_loop(subnet, window(), traffic, 0.5).run();
  const SimResult instrumented =
      Simulation::open_loop(subnet, all_telemetry_on(window()), traffic, 0.5)
          .run();
  ASSERT_TRUE(instrumented.timeline.enabled());
  ASSERT_FALSE(instrumented.timeline.samples.empty());
  SimResult scrubbed = instrumented;
  scrubbed.timeline = Timeline{};
  EXPECT_EQ(to_json(scrubbed), to_json(plain));
}

TEST(Timeline, FullTelemetryIsBitIdenticalUnderFaultsToo) {
  // Same contract on the richest code path: live SM, link failure and
  // recovery, drops (which freeze the flight recorder mid-run) and LFT
  // reprogramming.
  const FatTreeParams params(4, 3);
  auto run = [&](bool instrumented) {
    FatTreeFabric fabric{params};
    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    const FaultSchedule faults = FaultSchedule::random_uplink_failures(
        fabric, /*count=*/2, /*fail_at=*/8'000, /*seed=*/5,
        /*recover_at=*/15'000);
    const SimConfig cfg =
        instrumented ? all_telemetry_on(window(5'000, 15'000))
                     : window(5'000, 15'000);
    return Simulation::open_loop(subnet, cfg,
                                 {TrafficKind::kUniform, 0.2, 0, 4}, 0.6,
                                 {&sm, faults})
        .run();
  };
  const SimResult plain = run(false);
  const SimResult instrumented = run(true);
  ASSERT_GT(plain.packets_dropped, 0u);
  SimResult scrubbed = instrumented;
  scrubbed.timeline = Timeline{};
  EXPECT_EQ(to_json(scrubbed), to_json(plain));
}

TEST(Timeline, DeltasSumToTheRunTotals) {
  // With an interval that divides the run length and no decimation, the
  // sample windows tile [0, end] exactly: every generation, delivery and
  // drop lands in exactly one window.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();  // end = 22'000
  cfg.sample_interval_ns = 1'000;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kUniform, 0, 0, 3},
                                         0.5);
  const SimResult r = sim.run();
  const Timeline& tl = r.timeline;
  ASSERT_EQ(tl.samples.size(), 22u);
  EXPECT_EQ(tl.decimations, 0u);
  EXPECT_EQ(tl.interval_ns, tl.base_interval_ns);
  std::uint64_t generated = 0, delivered = 0, dropped = 0;
  for (std::size_t i = 0; i < tl.samples.size(); ++i) {
    const TimelineSample& s = tl.samples[i];
    EXPECT_EQ(s.t_ns, static_cast<SimTime>(i + 1) * 1'000);
    EXPECT_EQ(s.intervals, 1u);
    generated += s.generated;
    delivered += s.delivered;
    dropped += s.dropped;
  }
  EXPECT_EQ(generated, r.packets_generated);
  EXPECT_EQ(delivered, r.packets_delivered);
  EXPECT_EQ(dropped, r.packets_dropped);
  // The final gauge is the whole-run balance.
  EXPECT_EQ(tl.samples.back().in_flight,
            r.packets_generated - r.packets_delivered - r.packets_dropped);
  // A loaded fabric is visible in the gauges somewhere along the run.
  std::uint64_t peak_queued = 0;
  for (const TimelineSample& s : tl.samples) {
    peak_queued = std::max(peak_queued, s.queued_pkts);
  }
  EXPECT_GT(peak_queued, 0u);
}

TEST(Timeline, DecimationKeepsTheCapAndTheAccounting) {
  // A tight cap forces repeated pair-merges; the surviving samples must
  // still tile the covered prefix of the run with no interval counted
  // twice or lost.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();
  cfg.sample_interval_ns = 250;  // 88 base intervals vs a cap of 8
  cfg.timeline_max_samples = 8;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kUniform, 0, 0, 3},
                                         0.5);
  const SimResult r = sim.run();
  const Timeline& tl = r.timeline;
  ASSERT_FALSE(tl.samples.empty());
  EXPECT_LT(tl.samples.size(), 8u);  // append decimates on reaching the cap
  EXPECT_GE(tl.decimations, 3u);
  EXPECT_EQ(tl.interval_ns, tl.base_interval_ns << tl.decimations);
  SimTime prev_end = 0;
  std::uint64_t generated = 0;
  std::uint32_t intervals = 0;
  for (const TimelineSample& s : tl.samples) {
    EXPECT_EQ(s.t_ns - prev_end,
              static_cast<SimTime>(s.intervals) * tl.base_interval_ns);
    prev_end = s.t_ns;
    generated += s.generated;
    intervals += s.intervals;
  }
  EXPECT_EQ(static_cast<SimTime>(intervals) * tl.base_interval_ns, prev_end);
  // Coverage may stop short of end when the doubled cadence overshoots it,
  // but everything up to the last window edge is accounted for exactly.
  EXPECT_LE(prev_end, cfg.end_time());
  EXPECT_LE(generated, r.packets_generated);
}

TEST(Timeline, MergeFromAddsDeltasAndResolvesGauges) {
  TimelineSample a;
  a.t_ns = 1'000;
  a.generated = 10;
  a.delivered = 7;
  a.dropped = 1;
  a.becn = 2;
  a.in_flight = 9;
  a.queued_pkts = 5;
  a.max_queue_depth = 4;
  a.stalled_vls = 3;
  a.cct_active_nodes = 2;
  a.peak_cct_index = 6;
  TimelineSample b;
  b.t_ns = 2'000;
  b.generated = 4;
  b.delivered = 6;
  b.dropped = 0;
  b.becn = 1;
  b.in_flight = 7;
  b.queued_pkts = 2;
  b.max_queue_depth = 7;
  b.stalled_vls = 1;
  b.cct_active_nodes = 1;
  b.peak_cct_index = 1;
  a.merge_from(b);
  EXPECT_EQ(a.t_ns, 2'000);       // window extends to the later edge
  EXPECT_EQ(a.intervals, 2u);     // both base intervals accounted
  EXPECT_EQ(a.generated, 14u);    // deltas add
  EXPECT_EQ(a.delivered, 13u);
  EXPECT_EQ(a.dropped, 1u);
  EXPECT_EQ(a.becn, 3u);
  EXPECT_EQ(a.in_flight, 7u);     // level gauge: the later snapshot
  EXPECT_EQ(a.queued_pkts, 5u);   // pressure gauges: worst case seen
  EXPECT_EQ(a.max_queue_depth, 7u);
  EXPECT_EQ(a.stalled_vls, 3u);
  EXPECT_EQ(a.cct_active_nodes, 2u);
  EXPECT_EQ(a.peak_cct_index, 6u);
}

TEST(Timeline, BurstModeRejectsTheSampler) {
  // Burst runs have no fixed end time to pace samples against, so the
  // configuration is refused up front instead of silently ignored.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();
  cfg.sample_interval_ns = 1'000;
  EXPECT_THROW(Simulation::burst(subnet, cfg, all_to_all_personalized(4, 64)),
               ContractViolation);
}

TEST(FlightRecorder, FreezesOnTheFirstDrop) {
  const FatTreeParams params(4, 2);
  FatTreeFabric fabric{params};
  const Subnet subnet(fabric, "MLID");
  SmConfig dead;
  dead.react = false;
  SubnetManager sm(fabric, subnet, dead);
  const FaultSchedule faults = FaultSchedule::random_uplink_failures(
      fabric, /*count=*/1, /*fail_at=*/4'000, /*seed=*/5);
  SimConfig cfg = window();
  cfg.flight_recorder_depth = 8;
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kUniform, 0, 0, 3}, 0.5, {&sm, faults});
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_dropped, 0u);
  const FlightRecorderDump& dump = sim.flight_dump();
  ASSERT_TRUE(dump.valid());
  EXPECT_GE(dump.at, 4'000);  // nothing drops before the link dies
  EXPECT_NE(dump.cause.find("first drop"), std::string::npos);
  EXPECT_EQ(dump.device_name, fabric.fabric().device(dump.dev).name());
  ASSERT_FALSE(dump.events.empty());
  EXPECT_LE(dump.events.size(), 8u);
  for (std::size_t i = 1; i < dump.events.size(); ++i) {
    EXPECT_LE(dump.events[i - 1].time, dump.events[i].time);  // oldest first
  }
  EXPECT_LE(dump.events.back().time, dump.at);
  const std::string text = to_string(dump);
  EXPECT_NE(text.find("flight recorder"), std::string::npos);
  EXPECT_NE(text.find(dump.device_name), std::string::npos);
}

TEST(FlightRecorder, StaysUnfrozenWithoutDrops) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();
  cfg.flight_recorder_depth = 8;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kUniform, 0, 0, 3},
                                         0.2);
  const SimResult r = sim.run();
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_FALSE(sim.flight_dump().valid());
  EXPECT_EQ(to_string(sim.flight_dump()), "flight recorder: no dump\n");
}

TEST(ControlTrace, RecordsTheFaultAndSmPipelineInOrder) {
  const FatTreeParams params(4, 3);
  FatTreeFabric fabric{params};
  const Subnet subnet(fabric, "MLID");
  SubnetManager sm(fabric, subnet);
  // The window must outlive TWO full trap -> sweep -> program pipelines: a
  // (4,3) sweep alone costs ~12 us of probe SMPs, and the recovery has to
  // land after the first repair converged (a recovery mid-sweep coalesces
  // into the running sweep and diffs to zero programs).
  const FaultSchedule faults = FaultSchedule::random_uplink_failures(
      fabric, /*count=*/1, /*fail_at=*/8'000, /*seed=*/5,
      /*recover_at=*/30'000);
  SimConfig cfg = window(5'000, 55'000);
  cfg.trace_control = true;
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 4}, 0.5, {&sm, faults});
  sim.run();
  const auto& control = sim.control_trace();
  ASSERT_FALSE(control.empty());
  SimTime prev = 0;
  std::uint64_t fails = 0, recovers = 0, traps = 0, sweeps = 0, programs = 0;
  for (const ControlTraceRecord& rec : control) {
    EXPECT_GE(rec.time, prev);  // dispatch order == time order
    prev = rec.time;
    switch (rec.point) {
      case ControlPoint::kLinkFail: ++fails; break;
      case ControlPoint::kLinkRecover: ++recovers; break;
      case ControlPoint::kTrap: ++traps; break;
      case ControlPoint::kSweepDone: ++sweeps; break;
      case ControlPoint::kLftProgram: ++programs; break;
      default: break;
    }
  }
  EXPECT_EQ(fails, 1u);
  EXPECT_EQ(recovers, 1u);
  EXPECT_GE(traps, 1u);
  EXPECT_GE(sweeps, 2u);  // one per repair
  EXPECT_GE(programs, 1u);
  EXPECT_EQ(control.front().point, ControlPoint::kLinkFail);
  EXPECT_EQ(control.front().time, 8'000);
}

TEST(ControlTrace, RecordsTheCongestionControlLoop) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window(5'000, 20'000);
  cfg.trace_control = true;
  cfg.cc.enabled = true;
  cfg.cc.becn_increase = 4;
  cfg.cc.cct_quantum_ns = 600;
  cfg.cc.timer_ns = 15'000;
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kCentric, 0.3, 0, 0xCCA}, 0.3);
  const SimResult r = sim.run();
  ASSERT_GT(r.cc.becn_received, 0u);
  std::uint64_t becns = 0, timers = 0;
  for (const ControlTraceRecord& rec : sim.control_trace()) {
    if (rec.point == ControlPoint::kBecn) ++becns;
    if (rec.point == ControlPoint::kCctTimer) ++timers;
  }
  EXPECT_EQ(becns, r.cc.becn_received);
  EXPECT_GT(timers, 0u);
}

TEST(ControlTrace, ToStringNames) {
  EXPECT_EQ(to_string(ControlPoint::kLinkFail), "link-fail");
  EXPECT_EQ(to_string(ControlPoint::kLinkRecover), "link-recover");
  EXPECT_EQ(to_string(ControlPoint::kTrap), "trap");
  EXPECT_EQ(to_string(ControlPoint::kSweepDone), "sweep-done");
  EXPECT_EQ(to_string(ControlPoint::kLftProgram), "lft-program");
  EXPECT_EQ(to_string(ControlPoint::kBecn), "becn");
  EXPECT_EQ(to_string(ControlPoint::kCctTimer), "cct-timer");
  EXPECT_EQ(to_string(ControlPoint::kCcRelease), "cc-release");
}

}  // namespace
}  // namespace mlid

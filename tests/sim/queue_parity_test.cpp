// Acceptance gate for the ladder queue: full simulations on the heap and on
// the ladder must produce bit-identical results -- open-loop, burst, and
// live-SM fault scenarios alike.  Comparison goes through the JSON export,
// which serializes every public result field.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quick_window(EventQueueKind kind) {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 3;
  cfg.event_queue = kind;
  return cfg;
}

TEST(QueueParity, OpenLoopRunsAreBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  for (const double load : {0.2, 0.6, 0.9}) {
    const SimResult heap =
        Simulation::open_loop(subnet, quick_window(EventQueueKind::kHeap),
                              traffic, load)
            .run();
    const SimResult ladder =
        Simulation::open_loop(subnet, quick_window(EventQueueKind::kLadder),
                              traffic, load)
            .run();
    EXPECT_EQ(to_json(heap), to_json(ladder)) << "load " << load;
    EXPECT_GT(heap.packets_delivered, 0u);
  }
}

TEST(QueueParity, Fig12QuickSweepIsBitIdentical) {
  FigureSpec spec;
  spec.title = "fig12 parity";
  spec.traffic.kind = TrafficKind::kUniform;

  SweepOptions heap_opts;
  heap_opts.threads = 1;
  heap_opts.quick = true;
  heap_opts.event_queue = EventQueueKind::kHeap;
  SweepOptions ladder_opts = heap_opts;
  ladder_opts.event_queue = EventQueueKind::kLadder;

  const auto heap = run_sweep(spec, heap_opts);
  const auto ladder = run_sweep(spec, ladder_opts);
  ASSERT_EQ(heap.size(), ladder.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(to_json(heap[i].result), to_json(ladder[i].result))
        << heap[i].vls << "VL @ " << heap[i].load;
    // The manifests record which structure computed each point.
    EXPECT_EQ(heap[i].manifest.queue.kind, EventQueueKind::kHeap);
    EXPECT_EQ(ladder[i].manifest.queue.kind, EventQueueKind::kLadder);
    EXPECT_GT(ladder[i].manifest.queue.buckets, 0u);
  }
}

TEST(QueueParity, LiveSmFaultRunsAreBitIdentical) {
  const FatTreeParams params(4, 3);
  auto run = [&](EventQueueKind kind) {
    FatTreeFabric fabric{params};
    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    const FaultSchedule faults = FaultSchedule::random_uplink_failures(
        fabric, /*count=*/2, /*fail_at=*/8'000, /*seed=*/5, /*recover_at=*/
        18'000);
    const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 4};
    return Simulation::open_loop(subnet, quick_window(kind), traffic, 0.6,
                                 {&sm, faults})
        .run();
  };
  const SimResult heap = run(EventQueueKind::kHeap);
  const SimResult ladder = run(EventQueueKind::kLadder);
  EXPECT_EQ(to_json(heap), to_json(ladder));
  // Meaningful scenario: the fault machinery actually fired.
  EXPECT_GT(heap.sm_traps, 0u);
  EXPECT_GT(heap.packets_dropped, 0u);
}

TEST(QueueParity, TelemetryIsBitIdenticalAcrossQueues) {
  // The time-resolved layer must not depend on the queue structure either:
  // packet traces, the sampled timeline, and the control trace all compare
  // field-for-field between heap and ladder runs of a live-SM fault
  // scenario (the richest telemetry source: drops, traps, LFT writes).
  const FatTreeParams params(4, 3);
  auto run = [&](EventQueueKind kind) {
    FatTreeFabric fabric{params};
    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    const FaultSchedule faults = FaultSchedule::random_uplink_failures(
        fabric, /*count=*/2, /*fail_at=*/8'000, /*seed=*/5, /*recover_at=*/
        18'000);
    SimConfig cfg = quick_window(kind);
    cfg.sample_interval_ns = 500;
    cfg.trace_packets = 64;
    cfg.trace_stride = 8;
    cfg.trace_control = true;
    Simulation sim = Simulation::open_loop(
        subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 4}, 0.6, {&sm, faults});
    const SimResult r = sim.run();
    return std::tuple{r, sim.traces(), sim.control_trace()};
  };
  const auto [heap_r, heap_traces, heap_control] =
      run(EventQueueKind::kHeap);
  const auto [ladder_r, ladder_traces, ladder_control] =
      run(EventQueueKind::kLadder);
  EXPECT_EQ(to_json(heap_r), to_json(ladder_r));
  EXPECT_TRUE(heap_r.timeline == ladder_r.timeline);
  EXPECT_EQ(heap_traces, ladder_traces);
  ASSERT_EQ(heap_control.size(), ladder_control.size());
  for (std::size_t i = 0; i < heap_control.size(); ++i) {
    EXPECT_EQ(heap_control[i].time, ladder_control[i].time) << "event " << i;
    EXPECT_EQ(heap_control[i].point, ladder_control[i].point) << "event " << i;
    EXPECT_EQ(heap_control[i].dev, ladder_control[i].dev) << "event " << i;
  }
  // Meaningful scenario: every telemetry stream actually has content.
  EXPECT_FALSE(heap_r.timeline.samples.empty());
  EXPECT_FALSE(heap_traces.empty());
  EXPECT_FALSE(heap_control.empty());
}

TEST(QueueParity, BurstRunsAreBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(16, 512);
  const BurstResult heap =
      Simulation::burst(subnet, quick_window(EventQueueKind::kHeap), workload)
          .run_to_completion();
  const BurstResult ladder =
      Simulation::burst(subnet, quick_window(EventQueueKind::kLadder),
                        workload)
          .run_to_completion();
  EXPECT_EQ(to_json(heap), to_json(ladder));
  EXPECT_EQ(heap.events_processed, heap.events_scheduled);  // fully drained
  EXPECT_GT(heap.messages, 0u);
}

}  // namespace
}  // namespace mlid

// Virtual lanes: policy behaviour, equivalence of degenerate configs, and
// the throughput benefit extra lanes give under contention.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window() {
  SimConfig cfg;
  cfg.warmup_ns = 10'000;
  cfg.measure_ns = 50'000;
  cfg.seed = 77;
  return cfg;
}

TEST(VirtualLanes, Fixed0WithManyLanesEqualsOneLane) {
  // Pinning everything to VL0 must reproduce the 1-VL run bit-exactly:
  // the VL policy draws from a stream independent of destination draws.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig one = window();
  one.num_vls = 1;
  one.vl_policy = VlPolicy::kFixed0;
  SimConfig four = window();
  four.num_vls = 4;
  four.vl_policy = VlPolicy::kFixed0;
  const TrafficConfig traffic{TrafficKind::kUniform, 0, 0, 15};
  const SimResult a = Simulation::open_loop(subnet, one, traffic, 0.6).run();
  const SimResult b = Simulation::open_loop(subnet, four, traffic, 0.6).run();
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_DOUBLE_EQ(a.accepted_bytes_per_ns_per_node,
                   b.accepted_bytes_per_ns_per_node);
}

TEST(VirtualLanes, MoreLanesHelpUnderHotSpot) {
  // Observation 3/4 territory: with SLID and a strong hot spot, extra VLs
  // add buffering and reduce head-of-line blocking, raising throughput.
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.3, 0, 15};
  SimConfig one = window();
  one.num_vls = 1;
  SimConfig four = window();
  four.num_vls = 4;
  const double t1 =
      Simulation::open_loop(subnet, one, traffic, 0.8).run()
          .accepted_bytes_per_ns_per_node;
  const double t4 =
      Simulation::open_loop(subnet, four, traffic, 0.8).run()
          .accepted_bytes_per_ns_per_node;
  EXPECT_GT(t4, t1 * 0.98);  // at minimum not worse; typically clearly better
}

TEST(VirtualLanes, PolicyMappingsAreHonoured) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  // kBySource / kByDestination only touch vl = id % num_vls; behavioural
  // smoke test: simulations complete and deliver on every policy.
  for (VlPolicy policy : {VlPolicy::kRandom, VlPolicy::kBySource,
                          VlPolicy::kByDestination, VlPolicy::kFixed0}) {
    SimConfig cfg = window();
    cfg.num_vls = 4;
    cfg.vl_policy = policy;
    Simulation sim = Simulation::open_loop(subnet, cfg,
                                           {TrafficKind::kUniform, 0, 0, 15},
                                           0.5);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 100u);
    EXPECT_EQ(r.packets_dropped, 0u);
  }
}

TEST(VirtualLanes, ConfigRejectsBadLaneCounts) {
  SimConfig cfg;
  cfg.num_vls = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.num_vls = 16;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.num_vls = 15;
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace mlid

// Fault replay: a live-SM run is as bit-deterministic as a pristine one —
// the same seed and fault schedule reproduce every counter exactly — and an
// attached-but-idle SM does not perturb the engine at all.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

constexpr int kM = 8, kN = 2;

SimConfig window(std::uint64_t seed) {
  SimConfig cfg;
  cfg.warmup_ns = 8'000;
  cfg.measure_ns = 80'000;
  cfg.seed = seed;
  return cfg;
}

FaultSchedule schedule_for(int failures, SimTime fail_at,
                           SimTime recover_at = -1) {
  const FatTreeFabric fabric{FatTreeParams(kM, kN)};
  return FaultSchedule::random_uplink_failures(fabric, failures, fail_at,
                                               /*seed=*/99, recover_at);
}

SimResult run_live(std::string_view kind, std::uint64_t seed,
                   const FaultSchedule& faults) {
  FatTreeFabric fabric{FatTreeParams(kM, kN)};
  const Subnet subnet(fabric, kind);
  SubnetManager sm(fabric, subnet);
  Simulation sim = Simulation::open_loop(subnet, window(seed),
                                         {TrafficKind::kUniform, 0.2, 0, seed},
                                         0.6, {&sm, faults});
  return sim.run();
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
  EXPECT_EQ(a.dropped_dead_link, b.dropped_dead_link);
  EXPECT_EQ(a.dropped_during_convergence, b.dropped_during_convergence);
  EXPECT_EQ(a.drops_post_convergence, b.drops_post_convergence);
  EXPECT_EQ(a.first_fault_ns, b.first_fault_ns);
  EXPECT_EQ(a.sm_converged_ns, b.sm_converged_ns);
  EXPECT_EQ(a.reconvergence_ns, b.reconvergence_ns);
  EXPECT_EQ(a.sm_traps, b.sm_traps);
  EXPECT_EQ(a.sm_sweeps, b.sm_sweeps);
  EXPECT_EQ(a.sm_entries_programmed, b.sm_entries_programmed);
  EXPECT_EQ(a.sm_switches_programmed, b.sm_switches_programmed);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_DOUBLE_EQ(a.accepted_bytes_per_ns_per_node,
                   b.accepted_bytes_per_ns_per_node);
  EXPECT_DOUBLE_EQ(a.p99_latency_ns, b.p99_latency_ns);
}

TEST(FaultReplay, SameSeedAndScheduleBitIdentical) {
  const FaultSchedule faults = schedule_for(2, 20'000);
  expect_identical(run_live("MLID", 5, faults),
                   run_live("MLID", 5, faults));
}

TEST(FaultReplay, RecoveryScheduleBitIdentical) {
  const FaultSchedule faults = schedule_for(1, 20'000, 60'000);
  expect_identical(run_live("SLID", 7, faults),
                   run_live("SLID", 7, faults));
}

TEST(FaultReplay, EmptyScheduleIdenticalToUnattachedRun) {
  // An attached SM with nothing to do must not perturb the engine: the run
  // must be bit-identical to one that never heard of the SM, event count
  // included.
  FatTreeFabric fabric{FatTreeParams(kM, kN)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 5};
  const SimResult plain = Simulation::open_loop(subnet, window(5), traffic,
                                                0.6).run();

  SubnetManager sm(fabric, subnet);
  Simulation live =
      Simulation::open_loop(subnet, window(5), traffic, 0.6, {&sm, {}});
  const SimResult attached = live.run();

  expect_identical(plain, attached);
  EXPECT_EQ(attached.packets_dropped, 0u);
  EXPECT_EQ(attached.first_fault_ns, -1);
  EXPECT_EQ(attached.reconvergence_ns, -1);
}

TEST(FaultReplay, ConvergesAndStopsDropping) {
  const FaultSchedule faults = schedule_for(2, 20'000);
  const SimResult r = run_live("MLID", 11, faults);
  EXPECT_EQ(r.first_fault_ns, 20'000);
  EXPECT_GT(r.sm_converged_ns, r.first_fault_ns);
  EXPECT_EQ(r.reconvergence_ns, r.sm_converged_ns - r.first_fault_ns);
  EXPECT_GT(r.sm_sweeps, 0u);
  EXPECT_GT(r.sm_entries_programmed, 0u);
  // Packets die with the link and during the stale-table window, but never
  // among traffic injected after the SM reconverged.
  EXPECT_GT(r.packets_dropped, 0u);
  EXPECT_EQ(r.drops_post_convergence, 0u);
  EXPECT_EQ(r.packets_dropped, r.dropped_unroutable + r.dropped_dead_link +
                                   r.dropped_during_convergence);
}

TEST(FaultReplay, DifferentScheduleSeedsDiffer) {
  const FatTreeFabric fabric{FatTreeParams(kM, kN)};
  const FaultSchedule a =
      FaultSchedule::random_uplink_failures(fabric, 2, 20'000, 1);
  const FaultSchedule b =
      FaultSchedule::random_uplink_failures(fabric, 2, 20'000, 2);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  const bool same_links =
      a.events()[0].dev_a == b.events()[0].dev_a &&
      a.events()[0].port_a == b.events()[0].port_a &&
      a.events()[1].dev_a == b.events()[1].dev_a &&
      a.events()[1].port_a == b.events()[1].port_a;
  EXPECT_FALSE(same_links);
}

TEST(FaultSchedule, RandomUplinkFailuresShape) {
  const FatTreeFabric fabric{FatTreeParams(kM, kN)};
  const FaultSchedule faults =
      FaultSchedule::random_uplink_failures(fabric, 4, 30'000, 9, 70'000);
  ASSERT_EQ(faults.size(), 8u);  // 4 failures + 4 recoveries
  const Fabric& g = fabric.fabric();
  int fails = 0, recovers = 0;
  for (const FaultEvent& ev : faults.events()) {
    EXPECT_EQ(g.device(ev.dev_a).kind(), DeviceKind::kSwitch);
    EXPECT_EQ(g.device(ev.dev_b).kind(), DeviceKind::kSwitch);
    if (ev.fail) {
      ++fails;
      EXPECT_EQ(ev.at, 30'000);
    } else {
      ++recovers;
      EXPECT_EQ(ev.at, 70'000);
    }
  }
  EXPECT_EQ(fails, 4);
  EXPECT_EQ(recovers, 4);
  // events() is time-sorted: all failures precede all recoveries.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(faults.events()[i].fail);
    EXPECT_FALSE(faults.events()[i + 4].fail);
  }
}

TEST(FaultSchedule, FailLinkResolvesPeer) {
  const FatTreeFabric fabric{FatTreeParams(kM, kN)};
  const SwitchLabel leaf = SwitchLabel::from_index(fabric.params(), 1, 0);
  const DeviceId dev =
      fabric.switch_device(leaf.switch_id(fabric.params()));
  const auto port = static_cast<PortId>(fabric.params().half() + 1);
  FaultSchedule faults;
  faults.fail_link(10'000, fabric.fabric(), dev, port);
  ASSERT_EQ(faults.size(), 1u);
  const FaultEvent& ev = faults.events().front();
  const PortRef peer = fabric.fabric().peer_of(dev, port);
  EXPECT_EQ(ev.dev_a, dev);
  EXPECT_EQ(ev.port_a, port);
  EXPECT_EQ(ev.dev_b, peer.device);
  EXPECT_EQ(ev.port_b, peer.port);
}

}  // namespace
}  // namespace mlid

// Scenario subsystem: registry semantics (the SchemeRegistry contract --
// case-insensitive lookup, duplicate rejection, listing in registration
// order), the built-in scenarios' plan() invariants, the arm-independent
// seed derivation, and an orchestrator round-trip including shard parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "harness/report.hpp"
#include "harness/scenario_sweep.hpp"
#include "routing/registry.hpp"
#include "scenario/scenario.hpp"

namespace mlid {
namespace {

TEST(ScenarioRegistry, BuiltinsRegisterInOrder) {
  const std::vector<std::string> names = scenario_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "incast");
  EXPECT_EQ(names[1], "multi-tenant");
  EXPECT_EQ(names[2], "mice-elephants");
  EXPECT_EQ(names[3], "churn");
  for (const std::string& name : names) {
    const auto scenario = make_scenario(name);
    EXPECT_EQ(scenario->name(), name);
    EXPECT_FALSE(scenario->description().empty());
  }
}

TEST(ScenarioRegistry, LookupIsCaseInsensitive) {
  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  EXPECT_TRUE(reg.contains("incast"));
  EXPECT_TRUE(reg.contains("INCAST"));
  EXPECT_TRUE(reg.contains("Multi-Tenant"));
  EXPECT_FALSE(reg.contains("no-such-scenario"));
  // make() resolves the alternate spelling to the canonical scenario.
  EXPECT_EQ(make_scenario("CHURN")->name(), "churn");
}

TEST(ScenarioRegistry, UnknownNameThrowsWithListing) {
  try {
    (void)make_scenario("bogus");
    FAIL() << "make_scenario must reject unknown names";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("incast"), std::string::npos) << what;
  }
}

TEST(ScenarioRegistry, ListingJoinsNames) {
  const std::string listing = scenario_listing();
  EXPECT_NE(listing.find("incast, multi-tenant"), std::string::npos);
}

class TrivialScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "trivial-test-scenario";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "registry extension fixture";
  }
  [[nodiscard]] std::vector<ScenarioRun> plan(const FatTreeFabric&,
                                              bool) const override {
    ScenarioRun run;
    run.arm = "only";
    run.sim.warmup_ns = 1'000;
    run.sim.measure_ns = 4'000;
    run.offered_load = 0.2;
    return {run};
  }
  [[nodiscard]] std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const override {
    ContractCheck pass;
    pass.name = "ran";
    pass.measured = static_cast<double>(outcomes.size());
    pass.bound = 1.0;
    pass.passed = outcomes.size() == 1;
    ContractCheck fail;
    fail.name = "always-fails";
    fail.bound = 1.0;
    fail.passed = false;
    return {pass, fail};
  }
};

TEST(ScenarioRegistry, OpenRegistrationAndDuplicateRejection) {
  ScenarioRegistry& reg = ScenarioRegistry::instance();
  if (!reg.contains("trivial-test-scenario")) {
    reg.add("trivial-test-scenario",
            [] { return std::unique_ptr<Scenario>(new TrivialScenario); });
  }
  EXPECT_TRUE(reg.contains("trivial-test-scenario"));
  // Duplicate registration is a contract violation, case-insensitively.
  EXPECT_THROW(
      reg.add("Trivial-Test-Scenario",
              [] { return std::unique_ptr<Scenario>(new TrivialScenario); }),
      ContractViolation);
  // The orchestrator runs extensions like built-ins, and a failing
  // contract is counted, not dropped.
  ScenarioSweepOptions options;
  options.quick = true;
  options.threads = 1;
  const ScenarioReport report =
      run_scenarios({"trivial-test-scenario"}, options).front();
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_EQ(report.points[0].manifest.scenario, "trivial-test-scenario");
  EXPECT_EQ(report.violations(), 1);
}

TEST(ScenarioSeeds, StableArmIndependentAndNameKeyed) {
  const std::uint64_t a = scenario_seed(1, "incast");
  EXPECT_EQ(a, scenario_seed(1, "incast"));  // pure function of (base, name)
  EXPECT_NE(a, scenario_seed(1, "churn"));   // decorrelated across scenarios
  EXPECT_NE(a, scenario_seed(2, "incast"));  // and across base seeds
  // Case-insensitive like the registry: the stream follows the scenario,
  // not the spelling the user typed.
  EXPECT_EQ(a, scenario_seed(1, "INCAST"));
  // Traffic streams are domain-separated from simulation streams.
  EXPECT_NE(scenario_traffic_seed(1, "incast"), a);
}

TEST(BuiltinScenarios, PlansAreWellFormed) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  for (const std::string& name :
       {std::string("incast"), std::string("multi-tenant"),
        std::string("mice-elephants"), std::string("churn")}) {
    const auto scenario = make_scenario(name);
    for (const bool quick : {true, false}) {
      const std::vector<ScenarioRun> runs = scenario->plan(fabric, quick);
      ASSERT_FALSE(runs.empty()) << name;
      std::set<std::string> arms;
      for (const ScenarioRun& run : runs) {
        EXPECT_TRUE(arms.insert(run.arm).second)
            << name << ": duplicate arm " << run.arm;
        EXPECT_TRUE(SchemeRegistry::instance().contains(run.scheme)) << name;
        EXPECT_NO_THROW(run.sim.validate()) << name << "/" << run.arm;
        if (run.closed_loop) {
          EXPECT_FALSE(run.workload.empty()) << name << "/" << run.arm;
        } else {
          EXPECT_NO_THROW(run.faults.validate()) << name << "/" << run.arm;
        }
      }
    }
  }
  // The specific shapes the suite depends on.
  const auto mice = make_scenario("mice-elephants")->plan(fabric, true);
  EXPECT_TRUE(std::all_of(mice.begin(), mice.end(),
                          [](const ScenarioRun& r) { return r.closed_loop; }));
  const auto churn = make_scenario("churn")->plan(fabric, true);
  ASSERT_EQ(churn.size(), 1u);
  EXPECT_FALSE(churn[0].faults.empty());
}

TEST(ScenarioSweep, MultiTenantRoundTripPassesItsContracts) {
  ScenarioSweepOptions options;
  options.quick = true;
  options.threads = 1;
  const ScenarioReport report =
      run_scenarios({"multi-tenant"}, options).front();
  EXPECT_EQ(report.name, "multi-tenant");
  ASSERT_EQ(report.points.size(), 2u);
  // Arm-independent streams: both arms carry identical seeds in their
  // manifests, so they compare configuration deltas only.
  EXPECT_EQ(report.points[0].manifest.sim_seed,
            report.points[1].manifest.sim_seed);
  EXPECT_EQ(report.points[0].manifest.traffic_seed,
            report.points[1].manifest.traffic_seed);
  for (const ScenarioPoint& p : report.points) {
    EXPECT_EQ(p.manifest.scenario, "multi-tenant");
    EXPECT_EQ(p.sim.tenants.size(), 4u);
  }
  ASSERT_FALSE(report.checks.empty());
  EXPECT_EQ(report.violations(), 0) << render_contract_table(report);
}

TEST(ScenarioSweep, ShardedArmsAreByteIdenticalToSequential) {
  ScenarioSweepOptions seq;
  seq.quick = true;
  seq.threads = 1;
  ScenarioSweepOptions sharded = seq;
  sharded.shards = 2;
  const ScenarioReport a = run_scenarios({"multi-tenant"}, seq).front();
  const ScenarioReport b = run_scenarios({"multi-tenant"}, sharded).front();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(to_json(a.points[i].sim), to_json(b.points[i].sim))
        << a.points[i].arm;
  }
}

}  // namespace
}  // namespace mlid

// Unit tests for the congestion-control config and the per-HCA CCT.
#include <gtest/gtest.h>

#include "cc/cct.hpp"
#include "common/expect.hpp"

namespace mlid {
namespace {

CcConfig enabled_config() {
  CcConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(CcConfig, DefaultsValidate) {
  CcConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_NO_THROW(enabled_config().validate());
}

TEST(CcConfig, RejectsDegenerateKnobs) {
  {
    CcConfig cfg = enabled_config();
    cfg.fecn_threshold_pkts = 0;
    EXPECT_THROW(cfg.validate(), ContractViolation);
  }
  {
    CcConfig cfg = enabled_config();
    cfg.becn_delay_ns = -1;
    EXPECT_THROW(cfg.validate(), ContractViolation);
  }
  {
    CcConfig cfg = enabled_config();
    cfg.cct_levels = 0;
    EXPECT_THROW(cfg.validate(), ContractViolation);
  }
  {
    CcConfig cfg = enabled_config();
    cfg.becn_increase = 0;
    EXPECT_THROW(cfg.validate(), ContractViolation);
  }
  {
    CcConfig cfg = enabled_config();
    cfg.timer_ns = 0;
    EXPECT_THROW(cfg.validate(), ContractViolation);
  }
}

TEST(CcConfig, ShapeMapsIndexToDelay) {
  CcConfig cfg;
  cfg.cct_quantum_ns = 100;
  cfg.cct_shape = CctShape::kLinear;
  EXPECT_EQ(cfg.delay_ns(0), 0);
  EXPECT_EQ(cfg.delay_ns(3), 300);
  cfg.cct_shape = CctShape::kQuadratic;
  EXPECT_EQ(cfg.delay_ns(0), 0);
  EXPECT_EQ(cfg.delay_ns(3), 900);
  EXPECT_EQ(to_string(CctShape::kLinear), "linear");
  EXPECT_EQ(to_string(CctShape::kQuadratic), "quadratic");
}

TEST(Cct, BecnBumpsAndSaturates) {
  CcConfig cfg = enabled_config();
  cfg.cct_levels = 5;
  cfg.becn_increase = 2;
  CongestionControlTable cct(cfg, 4);
  EXPECT_FALSE(cct.any_active());
  EXPECT_EQ(cct.on_becn(1), 2);
  EXPECT_EQ(cct.on_becn(1), 4);
  EXPECT_EQ(cct.on_becn(1), 5);  // saturates at cct_levels, not 6
  EXPECT_EQ(cct.on_becn(1), 5);
  EXPECT_EQ(cct.index(1), 5);
  EXPECT_EQ(cct.index(0), 0);  // other destinations untouched
  EXPECT_EQ(cct.peak_index(), 5);
  EXPECT_TRUE(cct.any_active());
}

TEST(Cct, DecayDecrementsEveryNonZeroIndex) {
  CcConfig cfg = enabled_config();
  CongestionControlTable cct(cfg, 3);
  cct.on_becn(0);  // index 2
  cct.on_becn(0);  // index 4
  cct.on_becn(2);  // index 2
  EXPECT_TRUE(cct.decay());
  EXPECT_EQ(cct.index(0), 3);
  EXPECT_EQ(cct.index(1), 0);
  EXPECT_EQ(cct.index(2), 1);
  EXPECT_TRUE(cct.decay());  // 2 / 0 / 0 -- still active
  EXPECT_EQ(cct.index(2), 0);
  EXPECT_TRUE(cct.decay());   // 1 / 0 / 0
  EXPECT_FALSE(cct.decay());  // 0 / 0 / 0 -- timer can disarm
  EXPECT_FALSE(cct.any_active());
  // Peak remembers the high-water mark through the decay.
  EXPECT_EQ(cct.peak_index(), 4);
}

TEST(Cct, DelayFollowsTheConfiguredShape) {
  CcConfig cfg = enabled_config();
  cfg.cct_quantum_ns = 250;
  cfg.becn_increase = 3;
  cfg.cct_shape = CctShape::kQuadratic;
  CongestionControlTable cct(cfg, 2);
  EXPECT_EQ(cct.delay_ns(0), 0);
  cct.on_becn(0);
  EXPECT_EQ(cct.delay_ns(0), 250 * 9);
  EXPECT_EQ(cct.delay_ns(1), 0);
}

TEST(Cct, ValidatesConfigOnConstruction) {
  CcConfig cfg = enabled_config();
  cfg.cct_levels = 0;
  EXPECT_THROW(CongestionControlTable(cfg, 4), ContractViolation);
}

}  // namespace
}  // namespace mlid

#include "subnet/discovery.hpp"

#include <gtest/gtest.h>

#include "topology/builder.hpp"

namespace mlid {
namespace {

TEST(Discovery, SweepFindsTheWholeSubnet) {
  const FatTreeFabric ft{FatTreeParams(4, 3)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.node_device(0));
  EXPECT_EQ(topo.num_endnodes, 16u);
  EXPECT_EQ(topo.num_switches, 20u);
  EXPECT_EQ(topo.num_links, ft.fabric().num_links());
  EXPECT_EQ(topo.devices.size(), ft.fabric().num_devices());
}

TEST(Discovery, ProbeCountIsOnePerExaminedPort) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.node_device(0));
  // 8 endnodes x 1 port + 6 switches x 4 ports.
  EXPECT_EQ(topo.probes_sent, 8u + 24u);
}

TEST(Discovery, BfsDepthsAreMonotoneAndStartAtZero) {
  const FatTreeFabric ft{FatTreeParams(4, 3)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.node_device(0));
  EXPECT_EQ(topo.devices.front().id, ft.node_device(0));
  EXPECT_EQ(topo.devices.front().hops_from_sm, 0);
  int last = 0;
  int deepest = 0;
  for (const auto& d : topo.devices) {
    EXPECT_GE(d.hops_from_sm, last);  // BFS order
    last = d.hops_from_sm;
    deepest = std::max(deepest, d.hops_from_sm);
  }
  // Node -> leaf -> ... -> root -> ... -> leaf -> farthest node: 2n hops.
  EXPECT_EQ(deepest, 6);
}

TEST(Discovery, RecordedPeersMatchTheFabric) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.node_device(0));
  for (const auto& d : topo.devices) {
    const Device& real = ft.fabric().device(d.id);
    EXPECT_EQ(d.kind, real.kind());
    EXPECT_EQ(d.num_ports, real.num_ports());
    for (PortId port = 1; port <= real.num_ports(); ++port) {
      if (real.port_connected(port)) {
        EXPECT_EQ(d.peers[port], real.peer(port));
      } else {
        EXPECT_FALSE(d.peers[port].valid());
      }
    }
  }
}

TEST(Discovery, StartingFromASwitchWorksToo) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.switch_device(0));
  EXPECT_EQ(topo.devices.size(), ft.fabric().num_devices());
  EXPECT_EQ(topo.num_links, ft.fabric().num_links());
}

TEST(Discovery, FindLocatesDevices) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const DiscoveredTopology topo =
      discover_subnet(ft.fabric(), ft.node_device(0));
  ASSERT_NE(topo.find(ft.switch_device(3)), nullptr);
  EXPECT_EQ(topo.find(ft.switch_device(3))->id, ft.switch_device(3));
  EXPECT_EQ(topo.find(kInvalidDevice), nullptr);
}

}  // namespace
}  // namespace mlid

#include "subnet/subnet.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

TEST(Subnet, InitializationAccountsTheBringUp) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SubnetInitStats& stats = subnet.init_stats();
  EXPECT_EQ(stats.discovered_endnodes, 16u);
  EXPECT_EQ(stats.discovered_switches, 20u);
  EXPECT_EQ(stats.discovered_links, 48u);
  EXPECT_EQ(stats.lids_assigned, 16u * 4u);
  // Every switch carries a full LFT: 20 switches x 64 entries.
  EXPECT_EQ(stats.lft_entries_programmed, 20u * 64u);
  EXPECT_GT(stats.discovery_probes, 0u);
}

TEST(Subnet, SlidInitialization) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "SLID");
  EXPECT_EQ(subnet.init_stats().lids_assigned, 16u);
  EXPECT_EQ(subnet.init_stats().lft_entries_programmed, 20u * 16u);
  EXPECT_EQ(subnet.scheme().name(), "SLID");
}

TEST(Subnet, PathSelectionAndLidLookupsDelegateToTheScheme) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  EXPECT_EQ(subnet.select_dlid(0, 4), 17u);
  EXPECT_EQ(subnet.node_of(17), 4u);
  EXPECT_EQ(subnet.slid_of(2), 9u);
  EXPECT_EQ(subnet.scheme().name(), "MLID");
}

TEST(Subnet, RoutesCoverEverySwitch) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "MLID");
  EXPECT_EQ(subnet.routes().num_switches(),
            fabric.params().num_switches());
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    EXPECT_EQ(subnet.routes().lft(sw).max_lid(), subnet.scheme().max_lid());
  }
}

}  // namespace
}  // namespace mlid

// SubnetManager state machine, driven directly (no simulation engine):
// trap timing and coalescing, epoch-based cancellation of superseded
// programming plans, and the incremental-repair = full-rebuild equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "routing/updown.hpp"
#include "subnet/sm.hpp"

namespace mlid {
namespace {

constexpr int kM = 8, kN = 2;

struct Rig {
  explicit Rig(SmConfig cfg = {}, std::string_view kind = "MLID")
      : fabric(FatTreeParams(kM, kN)),
        subnet(fabric, kind),
        sm(fabric, subnet, cfg) {}

  /// Device/port of the i-th leaf switch's first up port.
  [[nodiscard]] std::pair<DeviceId, PortId> uplink(int leaf_index) const {
    const SwitchLabel leaf =
        SwitchLabel::from_index(fabric.params(), fabric.params().n() - 1,
                                static_cast<std::uint32_t>(leaf_index));
    return {fabric.switch_device(leaf.switch_id(fabric.params())),
            static_cast<PortId>(fabric.params().half() + 1)};
  }

  /// Drive one complete fail -> trap -> sweep -> program cycle.
  void fail_and_converge(DeviceId dev, PortId port, SimTime now) {
    const auto traps = sm.on_link_fail(dev, port, now);
    SimTime sweep_done = -1;
    for (const auto& trap : traps) {
      if (const auto done = sm.on_trap(trap.reporter, trap.port, trap.at)) {
        sweep_done = *done;
      }
    }
    ASSERT_GE(sweep_done, 0);
    for (const auto& op : sm.on_sweep_done(sweep_done)) {
      EXPECT_TRUE(sm.apply_program(op.plan_index, op.epoch, op.at));
    }
    EXPECT_TRUE(sm.converged());
  }

  FatTreeFabric fabric;
  Subnet subnet;
  SubnetManager sm;
};

TEST(SubnetManager, AdoptsBringUpTables) {
  const Rig rig;
  EXPECT_TRUE(rig.sm.converged());
  for (SwitchId sw = 0; sw < rig.fabric.params().num_switches(); ++sw) {
    EXPECT_TRUE(rig.sm.lft(sw) == rig.subnet.routes().lft(sw));
  }
}

TEST(SubnetManager, LinkFailRaisesTrapsFromBothEndpoints) {
  Rig rig;
  const auto [dev, port] = rig.uplink(0);
  const PortRef peer = rig.fabric.fabric().peer_of(dev, port);
  const auto traps = rig.sm.on_link_fail(dev, port, 10'000);

  // The fabric is disconnected immediately; the SM only learns later.
  EXPECT_FALSE(rig.fabric.fabric().device(dev).port_connected(port));
  EXPECT_FALSE(rig.sm.converged());

  const SimTime expect_at = 10'000 + rig.sm.config().detection_delay_ns +
                            rig.sm.config().trap_travel_ns;
  ASSERT_EQ(traps.size(), 2u);
  EXPECT_EQ(traps[0].at, expect_at);
  EXPECT_EQ(traps[0].reporter, dev);
  EXPECT_EQ(traps[0].port, port);
  EXPECT_EQ(traps[1].at, expect_at);
  EXPECT_EQ(traps[1].reporter, peer.device);
  EXPECT_EQ(traps[1].port, peer.port);
}

TEST(SubnetManager, SecondTrapOfOneFailureCoalesces) {
  Rig rig;
  const auto [dev, port] = rig.uplink(0);
  const auto traps = rig.sm.on_link_fail(dev, port, 0);
  ASSERT_EQ(traps.size(), 2u);

  const auto first = rig.sm.on_trap(traps[0].reporter, traps[0].port,
                                    traps[0].at);
  ASSERT_TRUE(first.has_value());
  // The sweep cost is the modeled probe traffic of a re-discovery.
  EXPECT_EQ(*first, traps[0].at +
                        static_cast<SimTime>(rig.sm.stats().probes_sent) *
                            rig.sm.config().smp_probe_ns);

  // Same failure, second endpoint: covered by the sweep in progress.
  const auto second = rig.sm.on_trap(traps[1].reporter, traps[1].port,
                                     traps[1].at);
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(rig.sm.stats().traps_received, 2u);
  EXPECT_EQ(rig.sm.stats().traps_coalesced, 1u);
  EXPECT_EQ(rig.sm.stats().sweeps_started, 1u);
}

TEST(SubnetManager, TrapForAlreadyRoutedChangeIsIgnored) {
  Rig rig;
  const auto [dev, port] = rig.uplink(0);
  rig.fail_and_converge(dev, port, 0);
  // A straggler trap describing the same, already-repaired failure.
  const auto late = rig.sm.on_trap(dev, port, 100'000);
  EXPECT_FALSE(late.has_value());
  EXPECT_EQ(rig.sm.stats().sweeps_started, 1u);
  EXPECT_TRUE(rig.sm.converged());
}

TEST(SubnetManager, ReactFalseNeverSweeps) {
  SmConfig cfg;
  cfg.react = false;
  Rig rig(cfg);
  const auto [dev, port] = rig.uplink(0);
  const auto traps = rig.sm.on_link_fail(dev, port, 0);
  for (const auto& trap : traps) {
    EXPECT_FALSE(rig.sm.on_trap(trap.reporter, trap.port, trap.at));
  }
  EXPECT_EQ(rig.sm.stats().traps_received, 2u);
  EXPECT_EQ(rig.sm.stats().sweeps_started, 0u);
  EXPECT_FALSE(rig.sm.converged());  // the stale tables never catch up
}

TEST(SubnetManager, NewSweepCancelsInFlightPrograms) {
  Rig rig;
  const auto [dev_a, port_a] = rig.uplink(0);
  const auto [dev_b, port_b] = rig.uplink(1);

  // Failure 1: sweep, get the plan, apply only the first op.
  const auto traps1 = rig.sm.on_link_fail(dev_a, port_a, 0);
  const auto done1 = rig.sm.on_trap(traps1[0].reporter, traps1[0].port,
                                    traps1[0].at);
  ASSERT_TRUE(done1.has_value());
  const auto ops1 = rig.sm.on_sweep_done(*done1);
  ASSERT_GT(ops1.size(), 1u);
  EXPECT_TRUE(rig.sm.apply_program(ops1[0].plan_index, ops1[0].epoch,
                                   ops1[0].at));

  // Failure 2 arrives mid-programming and triggers a newer sweep.
  const auto traps2 = rig.sm.on_link_fail(dev_b, port_b, ops1[0].at);
  const auto done2 = rig.sm.on_trap(traps2[0].reporter, traps2[0].port,
                                    traps2[0].at);
  ASSERT_TRUE(done2.has_value());
  const auto ops2 = rig.sm.on_sweep_done(*done2);

  // The rest of plan 1 is void: stale epoch, no table change, no crash.
  for (std::size_t i = 1; i < ops1.size(); ++i) {
    EXPECT_FALSE(rig.sm.apply_program(ops1[i].plan_index, ops1[i].epoch,
                                      ops1[i].at));
  }
  // Plan 2 completes and reflects *both* failures (the second sweep
  // observed the fabric with both links gone).
  for (const auto& op : ops2) {
    EXPECT_TRUE(rig.sm.apply_program(op.plan_index, op.epoch, op.at));
  }
  EXPECT_TRUE(rig.sm.converged());

  FatTreeFabric degraded{FatTreeParams(kM, kN)};
  degraded.mutable_fabric().disconnect(dev_a, port_a);
  degraded.mutable_fabric().disconnect(dev_b, port_b);
  const UpDownRouting fresh(degraded, rig.subnet.scheme().lmc());
  for (SwitchId sw = 0; sw < rig.fabric.params().num_switches(); ++sw) {
    EXPECT_TRUE(rig.sm.lft(sw) == fresh.build_lft(sw));
  }
}

TEST(SubnetManager, IncrementalRepairEqualsFullRebuild) {
  SmConfig full_cfg;
  full_cfg.incremental = false;
  Rig inc;           // default: incremental
  Rig full(full_cfg);

  const auto [dev, port] = inc.uplink(2);
  inc.fail_and_converge(dev, port, 0);
  full.fail_and_converge(dev, port, 0);

  // Identical final tables, and both equal a from-scratch UPDN bring-up on
  // the degraded fabric -- even though the starting point was the MLID
  // closed form and the incremental plan only touched changed entries.
  FatTreeFabric degraded{FatTreeParams(kM, kN)};
  degraded.mutable_fabric().disconnect(dev, port);
  const UpDownRouting fresh(degraded, inc.subnet.scheme().lmc());
  for (SwitchId sw = 0; sw < inc.fabric.params().num_switches(); ++sw) {
    EXPECT_TRUE(inc.sm.lft(sw) == full.sm.lft(sw));
    EXPECT_TRUE(inc.sm.lft(sw) == fresh.build_lft(sw));
  }

  // The full rewrite pays for every entry on every switch; the incremental
  // plan only for the diff.
  EXPECT_LT(inc.sm.stats().entries_programmed,
            full.sm.stats().entries_programmed);
  EXPECT_LT(inc.sm.stats().switches_programmed,
            full.sm.stats().switches_programmed);
}

TEST(SubnetManager, RecoveryRestoresPristineTables) {
  Rig rig;
  const auto [dev, port] = rig.uplink(1);
  const PortRef peer = rig.fabric.fabric().peer_of(dev, port);
  rig.fail_and_converge(dev, port, 0);

  // The repaired tables differ somewhere from the bring-up state.
  bool differs = false;
  for (SwitchId sw = 0; sw < rig.fabric.params().num_switches(); ++sw) {
    if (!(rig.sm.lft(sw) == rig.subnet.routes().lft(sw))) differs = true;
  }
  EXPECT_TRUE(differs);

  // Bring the link back and run the IN_SERVICE cycle.
  const auto traps = rig.sm.on_link_recover(dev, port, peer.device,
                                            peer.port, 200'000);
  SimTime sweep_done = -1;
  for (const auto& trap : traps) {
    if (const auto done = rig.sm.on_trap(trap.reporter, trap.port, trap.at)) {
      sweep_done = *done;
    }
  }
  ASSERT_GE(sweep_done, 0);
  for (const auto& op : rig.sm.on_sweep_done(sweep_done)) {
    EXPECT_TRUE(rig.sm.apply_program(op.plan_index, op.epoch, op.at));
  }
  EXPECT_TRUE(rig.sm.converged());
  for (SwitchId sw = 0; sw < rig.fabric.params().num_switches(); ++sw) {
    EXPECT_TRUE(rig.sm.lft(sw) == rig.subnet.routes().lft(sw));
  }
}

}  // namespace
}  // namespace mlid

// Subnet bring-up with caller-supplied routing schemes, and its failure
// behaviour on damaged fabrics.
#include <gtest/gtest.h>

#include <memory>

#include "routing/fat_tree_routing.hpp"
#include "routing/updown.hpp"
#include "subnet/subnet.hpp"

namespace mlid {
namespace {

TEST(CustomScheme, PartialMlidSubnetWorksEndToEnd) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(
      fabric, std::make_unique<PartialMlidRouting>(fabric.params(), 1));
  EXPECT_EQ(subnet.scheme().name(), "PartialMLID");
  EXPECT_EQ(subnet.init_stats().lids_assigned, 16u * 2u);
  // DLID selection folds the rank into the 2-LID block.
  const Lid dlid = subnet.select_dlid(3, 4);  // P(011) -> P(100), rank 3
  EXPECT_EQ(dlid, subnet.scheme().lids_of(4).at(3 & 1));
}

TEST(CustomScheme, UpdnSubnetWorksEndToEnd) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(
      fabric, std::make_unique<UpDownRouting>(fabric, Lmc{1}));
  EXPECT_EQ(subnet.scheme().name(), "UPDN");
  EXPECT_EQ(subnet.routes().num_switches(), 6u);
}

TEST(CustomScheme, NullSchemeIsRejected) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  EXPECT_THROW(Subnet(fabric, std::unique_ptr<RoutingScheme>{}),
               ContractViolation);
}

TEST(CustomScheme, BringUpRefusesAPartitionedFabric) {
  // Cutting a node's only attachment makes the discovery sweep fall short
  // of the expected device count; the SM refuses to initialize.
  FatTreeFabric fabric{FatTreeParams(4, 2)};
  fabric.mutable_fabric().disconnect(fabric.node_device(3), 1);
  EXPECT_THROW(Subnet(fabric, "MLID"), ContractViolation);
}

TEST(CustomScheme, BringUpToleratesRedundantLinkLoss) {
  // Losing one inter-switch link keeps the fabric connected; the sweep
  // still reaches everything (the *routing* question is separate).
  FatTreeFabric fabric{FatTreeParams(4, 2)};
  const SwitchLabel leaf = SwitchLabel::from_index(fabric.params(), 1, 0);
  fabric.mutable_fabric().disconnect(
      fabric.switch_device(leaf.switch_id(fabric.params())), 3);
  const Subnet subnet(fabric, "MLID");
  EXPECT_EQ(subnet.init_stats().discovered_links,
            fabric.fabric().num_links());
}

}  // namespace
}  // namespace mlid

// FT(16,4)-class scale smoke: 8192 endnodes, 3584 switches, 65536 total
// ports.  This is the fabric class ROADMAP item 2 targets; it only became
// simulable after the memory-layout work (formula-backed CompactLft plus
// the struct-of-arrays engine state), so this test pins three things:
//   1. bring-up + routing correctness at scale (stride-sampled path
//      traces under both LID layouts the scale suite uses),
//   2. an open-loop run actually completes,
//   3. the per-endport memory budget documented in docs/simulator.md.
// Full MLID would need LMC 9 (2^9 LIDs per node > the 48k LID space at
// 8192 nodes), so the multipath layout here is PartialMlidRouting at
// LMC 2 -- the same configuration bench/ablation_scale.cpp measures.
#include <gtest/gtest.h>

#include <memory>

#include "routing/fat_tree_routing.hpp"
#include "routing/path.hpp"
#include "sim/engine.hpp"
#include "subnet/subnet.hpp"
#include "topology/properties.hpp"

namespace mlid {
namespace {

constexpr std::size_t kTotalPorts = 65'536;

// The documented budget (docs/simulator.md, "Memory layout & scale"): hot
// engine state plus compiled routing tables, per physical port.  Measured
// ~198 B/endport after the struct-of-arrays refactor; the assert leaves
// headroom for run-length-dependent growth (delivery records) but fails
// well before the formula-backed routing layer could regress to dense
// tables, which alone would be ~1.8 KiB/endport at this scale.
constexpr std::size_t kBytesPerEndportBudget = 2'048;

std::size_t total_ports(const FatTreeFabric& fabric) {
  const Fabric& g = fabric.fabric();
  std::size_t ports = 0;
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    ports += static_cast<std::size_t>(g.device(dev).num_ports());
  }
  return ports;
}

TEST(BigFabric, Ft16x4BringsUpRoutesAndSimulates) {
  const FatTreeFabric fabric{FatTreeParams(16, 4)};
  ASSERT_EQ(fabric.params().num_nodes(), 8192u);
  ASSERT_EQ(fabric.params().num_switches(), 3584u);
  ASSERT_EQ(total_ports(fabric), kTotalPorts);

  const Subnet subnet(fabric,
                      std::make_unique<PartialMlidRouting>(fabric.params(),
                                                           Lmc{2}));
  EXPECT_EQ(subnet.init_stats().discovered_endnodes, 8192u);
  EXPECT_EQ(subnet.init_stats().lids_assigned, 8192u * 4u);

  // Stride-sampled LFT consistency: every sampled (src, dst) pair must
  // trace to the owning endnode over a minimal path, for every LID of the
  // reduced block.
  const FatTreeParams& p = fabric.params();
  const RoutingScheme& scheme = subnet.scheme();
  std::uint64_t checked = 0;
  for (NodeId src = 0; src < p.num_nodes(); src += 509) {
    for (NodeId dst = 7; dst < p.num_nodes(); dst += 677) {
      if (src == dst) continue;
      const int minimal =
          min_path_links(p, fabric.node_label(src), fabric.node_label(dst));
      const LidRange lids = scheme.lids_of(dst);
      for (Lid lid = lids.base(); lid <= lids.last(); ++lid) {
        const PathTrace trace = trace_path(fabric, subnet.routes(), src, lid);
        ASSERT_TRUE(trace.complete) << "src " << src << " lid " << lid;
        ASSERT_EQ(trace.terminal, fabric.node_device(dst));
        ASSERT_EQ(trace.num_links(), minimal);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 700u);

  // A short open-loop run at low load must complete and deliver without
  // drops (the fabric is intact and non-oversubscribed).
  SimConfig cfg;
  cfg.warmup_ns = 500;
  cfg.measure_ns = 2'000;
  cfg.seed = 11;
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 17}, 0.3);
  const SimResult r = sim.run();
  EXPECT_GT(r.packets_delivered, 5'000u);
  EXPECT_EQ(r.packets_dropped, 0u);

  // The documented scale budget: engine hot state + compiled routes, per
  // physical port.
  const std::size_t footprint =
      sim.memory_footprint() + subnet.routes().memory_bytes();
  EXPECT_LT(footprint / kTotalPorts, kBytesPerEndportBudget)
      << "footprint " << footprint << " bytes over " << kTotalPorts
      << " ports";
}

TEST(BigFabric, Ft16x4SlidLayoutRoutesConsistently) {
  const FatTreeFabric fabric{FatTreeParams(16, 4)};
  const Subnet subnet(fabric, "SLID");
  const FatTreeParams& p = fabric.params();
  EXPECT_EQ(subnet.init_stats().lids_assigned, 8192u);
  std::uint64_t checked = 0;
  for (NodeId src = 3; src < p.num_nodes(); src += 701) {
    for (NodeId dst = 0; dst < p.num_nodes(); dst += 523) {
      if (src == dst) continue;
      const Lid dlid = subnet.select_dlid(src, dst);
      EXPECT_EQ(subnet.node_of(dlid), dst);
      const PathTrace trace = trace_path(fabric, subnet.routes(), src, dlid);
      ASSERT_TRUE(trace.complete) << "src " << src << " dst " << dst;
      ASSERT_EQ(trace.terminal, fabric.node_device(dst));
      ++checked;
    }
  }
  EXPECT_GT(checked, 150u);
}

}  // namespace
}  // namespace mlid

// Whole-stack integration: fabric -> SM bring-up -> routing validation ->
// simulation, per network size and scheme.
#include <gtest/gtest.h>

#include "routing/validate.hpp"
#include "sim/engine.hpp"
#include "topology/validate.hpp"

namespace mlid {
namespace {

struct Case {
  int m;
  int n;
};

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, BringUpRouteAndSimulate) {
  const auto c = GetParam();
  const FatTreeFabric fabric{FatTreeParams(c.m, c.n)};

  // Topology is structurally sound.
  ASSERT_TRUE(validate_fat_tree(fabric).ok());

  for (const std::string_view kind : {"SLID", "MLID"}) {
    const Subnet subnet(fabric, kind);

    // The programmed tables route every (src, DLID) pair correctly.
    const RoutingReport paths =
        verify_all_paths(fabric, subnet.scheme(), subnet.routes());
    for (const auto& p : paths.problems) ADD_FAILURE() << p;

    // A short simulation at moderate load completes cleanly.
    SimConfig cfg;
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 20'000;
    cfg.seed = 3;
    Simulation sim = Simulation::open_loop(subnet, cfg,
                                           {TrafficKind::kUniform, 0.2, 0, 7},
                                           0.5);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_EQ(r.packets_dropped, 0u);
    // Average hop count sits inside the tree's geometric bounds.
    EXPECT_GE(r.avg_hops, 1.0);
    EXPECT_LE(r.avg_hops, 2.0 * c.n - 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EndToEnd,
                         ::testing::Values(Case{4, 2}, Case{4, 3}, Case{8, 2},
                                           Case{4, 4}, Case{8, 3}));

TEST(EndToEnd, MlidUsesEveryRootUnderUniformLoadWhileSlidConcentratesPerDst) {
  // Link-level view of the spreading property: count distinct roots used by
  // all sources toward one destination.
  const FatTreeParams p(4, 3);
  const FatTreeFabric fabric(p);
  const Subnet mlid(fabric, "MLID");
  const Subnet slid(fabric, "SLID");

  auto roots_used = [&](const Subnet& subnet, NodeId dst) {
    std::set<DeviceId> roots;
    for (NodeId src = 0; src < p.num_nodes(); ++src) {
      if (src == dst) continue;
      const PathTrace trace = trace_path(fabric, subnet.routes(), src,
                                         subnet.select_dlid(src, dst));
      for (std::size_t i = 1; i < trace.hops.size(); ++i) {
        const Device& dev = fabric.fabric().device(trace.hops[i].device);
        if (dev.kind() == DeviceKind::kSwitch &&
            fabric.switch_label(dev.switch_id).level() == 0) {
          roots.insert(trace.hops[i].device);
        }
      }
    }
    return roots.size();
  };

  for (NodeId dst : {NodeId{0}, NodeId{5}, NodeId{15}}) {
    EXPECT_EQ(roots_used(mlid, dst), 4u) << "MLID must fan over all roots";
    EXPECT_EQ(roots_used(slid, dst), 1u) << "SLID funnels through one root";
  }
}

}  // namespace
}  // namespace mlid

// Sampled validation at the largest supported sizes (512-node 32-port
// 2-tree, 128-node configurations): exhaustive per-pair checks would take
// minutes, so these sample deterministically and lean on the closed forms.
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/path.hpp"
#include "topology/properties.hpp"
#include "topology/validate.hpp"

namespace mlid {
namespace {

TEST(LargeScale, FiveTwelveNodeFabricValidatesStructurally) {
  const FatTreeFabric fabric{FatTreeParams(32, 2)};
  EXPECT_EQ(fabric.params().num_nodes(), 512u);
  EXPECT_EQ(fabric.params().num_switches(), 48u);
  const ValidationReport report = validate_fat_tree(fabric);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
}

TEST(LargeScale, SampledMlidPathsAreMinimalAndCorrect) {
  const FatTreeFabric fabric{FatTreeParams(32, 2)};
  const FatTreeParams& p = fabric.params();
  const MlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  // Deterministic stride sampling: ~2k of the 512 * 511 pairs, every LID.
  std::uint64_t checked = 0;
  for (NodeId src = 0; src < p.num_nodes(); src += 11) {
    for (NodeId dst = 3; dst < p.num_nodes(); dst += 13) {
      if (src == dst) continue;
      const NodeLabel src_label = fabric.node_label(src);
      const NodeLabel dst_label = fabric.node_label(dst);
      const int minimal = min_path_links(p, src_label, dst_label);
      const LidRange lids = scheme.lids_of(dst);
      for (Lid lid = lids.base(); lid <= lids.last(); ++lid) {
        const PathTrace trace = trace_path(fabric, routes, src, lid);
        ASSERT_TRUE(trace.complete);
        ASSERT_EQ(trace.terminal, fabric.node_device(dst));
        ASSERT_EQ(trace.num_links(), minimal);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 10'000u);
}

TEST(LargeScale, SubgroupSpreadingHoldsAtFullWidth) {
  // A 32-port 2-tree has 16 roots; the 16 members of any leaf subgroup
  // sending to one remote node must use all 16 of them.
  const FatTreeFabric fabric{FatTreeParams(32, 2)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const NodeId dst = 511;
  std::set<DeviceId> roots;
  for (NodeId src = 0; src < 16; ++src) {  // the p0 = 0 subgroup
    const PathTrace trace =
        trace_path(fabric, routes, src, scheme.select_dlid(src, dst));
    ASSERT_TRUE(trace.complete);
    ASSERT_EQ(trace.hops.size(), 4u);  // node, leaf, root, leaf
    roots.insert(trace.hops[2].device);
  }
  EXPECT_EQ(roots.size(), 16u);
}

}  // namespace
}  // namespace mlid

// End-to-end simulation on the k-ary n-tree family: the whole stack
// (builder -> SM -> simulator) must work identically for the second
// topology family.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

TEST(KarySim, OpenLoopUniformRuns) {
  const FatTreeFabric fabric(FatTreeParams::kary(2, 3));  // 8 nodes
  for (const std::string_view kind : {"SLID", "MLID"}) {
    const Subnet subnet(fabric, kind);
    SimConfig cfg;
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 25'000;
    cfg.seed = 14;
    Simulation sim = Simulation::open_loop(subnet, cfg,
                                           {TrafficKind::kUniform, 0.2, 0, 8},
                                           0.5);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 50u);
    EXPECT_EQ(r.packets_dropped, 0u);
    EXPECT_GE(r.avg_hops, 1.0);
    EXPECT_LE(r.avg_hops, 5.0);  // 2n - 1 with n = 3
  }
}

TEST(KarySim, LatencyClosedFormHolds) {
  // 4-ary 2-tree neighbor traffic: one leaf switch between the pair,
  // 1 * 100 + 2 * 20 + 256 = 396 ns.
  const FatTreeFabric fabric(FatTreeParams::kary(4, 2));
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 30'000;
  cfg.seed = 14;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kNeighbor, 0, 0, 8},
                                         0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 30u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 396.0);
}

TEST(KarySim, CentricMlidBeatsSlid) {
  const FatTreeFabric fabric(FatTreeParams::kary(4, 2));  // 16 nodes
  const Subnet mlid(fabric, "MLID");
  const Subnet slid(fabric, "SLID");
  SimConfig cfg;
  cfg.warmup_ns = 8'000;
  cfg.measure_ns = 40'000;
  cfg.seed = 14;
  const TrafficConfig traffic{TrafficKind::kCentric, 0.3, 0, 8};
  const double q =
      Simulation::open_loop(mlid, cfg, traffic, 0.9).run().accepted_bytes_per_ns_per_node;
  const double s =
      Simulation::open_loop(slid, cfg, traffic, 0.9).run().accepted_bytes_per_ns_per_node;
  EXPECT_GT(q, s);
}

TEST(KarySim, BurstAllToAllDrains) {
  const FatTreeFabric fabric(FatTreeParams::kary(2, 3));
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.seed = 14;
  Simulation sim = Simulation::burst(subnet, cfg,
                                     all_to_all_personalized(8, 512));
  const BurstResult r = sim.run_to_completion();
  EXPECT_EQ(r.messages, 8u * 7u);
  EXPECT_GT(r.makespan_ns, 0);
}

}  // namespace
}  // namespace mlid

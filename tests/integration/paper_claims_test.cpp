// The paper's qualitative claims (Remarks 1-3), tested at reduced scale so
// they run in CI; the bench harness reproduces the full figures.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mlid {
namespace {

FigureSpec spec_for(int m, int n, TrafficKind kind) {
  FigureSpec spec;
  spec.m = m;
  spec.n = n;
  spec.traffic = {kind, 0.20, 0, 5};
  spec.sim.warmup_ns = 8'000;
  spec.sim.measure_ns = 30'000;
  spec.sim.seed = 4;
  spec.vl_counts = {1};
  spec.loads = {0.05, 0.5, 0.9};
  return spec;
}

TEST(PaperClaims, Remark1MlidThroughputAtLeastSlidCentric) {
  // "The throughput of the MLID scheme is higher than that of the SLID
  // scheme for all simulated cases" -- sharpest under centric traffic.
  for (const auto& [m, n] : {std::pair{4, 3}, std::pair{8, 2}}) {
    const FigureSpec spec = spec_for(m, n, TrafficKind::kCentric);
    const auto points = run_sweep(spec, {.threads = 1});
    const double mlid = saturation_throughput(points, "MLID", 1);
    const double slid = saturation_throughput(points, "SLID", 1);
    EXPECT_GT(mlid, slid) << m << "-port " << n << "-tree";
  }
}

TEST(PaperClaims, Remark1MlidThroughputAtLeastSlidUniform) {
  const FigureSpec spec = spec_for(8, 2, TrafficKind::kUniform);
  const auto points = run_sweep(spec, {.threads = 1});
  const double mlid = saturation_throughput(points, "MLID", 1);
  const double slid = saturation_throughput(points, "SLID", 1);
  EXPECT_GE(mlid, slid * 0.98);  // "a little higher or equal" for small m
}

TEST(PaperClaims, Remark2LowLoadLatencyComparable) {
  // "When the network traffic is low, the average message latency of the
  // MLID scheme, in general, is less than or equal to that of SLID."
  const FigureSpec spec = spec_for(4, 3, TrafficKind::kUniform);
  const auto points = run_sweep(spec, {.threads = 1});
  double mlid_low = 0.0, slid_low = 0.0;
  for (const auto& p : points) {
    if (p.load != 0.05) continue;
    (p.scheme == "MLID" ? mlid_low : slid_low) =
        p.result.avg_latency_ns;
  }
  ASSERT_GT(mlid_low, 0.0);
  ASSERT_GT(slid_low, 0.0);
  // Identical path lengths at low load: within a few percent.
  EXPECT_NEAR(mlid_low, slid_low, 0.05 * slid_low);
}

TEST(PaperClaims, Observation4CentricLowLoadLatencyFavorsMlid) {
  // "For the 20% centric traffic pattern, if the port number of a switch is
  // not large, the average message latency of the MLID scheme is less than
  // that of the SLID scheme when only one virtual lane is available."
  // With a hot spot even the lowest load queues packets, and MLID's spread
  // ascent keeps those queues shorter.
  const FigureSpec spec = spec_for(8, 2, TrafficKind::kCentric);
  const auto points = run_sweep(spec, {.threads = 1});
  double mlid_low = 0.0, slid_low = 0.0;
  for (const auto& p : points) {
    if (p.load != 0.9) continue;  // deep in the congested regime
    (p.scheme == "MLID" ? mlid_low : slid_low) =
        p.result.avg_latency_ns;
  }
  ASSERT_GT(mlid_low, 0.0);
  ASSERT_GT(slid_low, 0.0);
  // MLID accepts more traffic at this offered load (Remark 1); its latency
  // should not exceed SLID's by more than a small margin.
  EXPECT_LT(mlid_low, 1.10 * slid_low);
}

TEST(PaperClaims, Remark3AdvantageGrowsWithNetworkSize) {
  // "The performance improvement compared to the SLID scheme is more
  // noticeable while a network size is getting larger."
  auto ratio = [&](int m, int n) {
    const FigureSpec spec = spec_for(m, n, TrafficKind::kCentric);
    const auto points = run_sweep(spec, {.threads = 1});
    return saturation_throughput(points, "MLID", 1) /
           saturation_throughput(points, "SLID", 1);
  };
  const double small = ratio(4, 2);
  const double large = ratio(4, 3);
  EXPECT_GT(large, small * 0.95);
  EXPECT_GT(large, 1.0);
}

}  // namespace
}  // namespace mlid

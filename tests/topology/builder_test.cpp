#include "topology/builder.hpp"

#include <gtest/gtest.h>

#include "topology/validate.hpp"

namespace mlid {
namespace {

std::array<int, kMaxTreeHeight> digits(std::initializer_list<int> list) {
  std::array<int, kMaxTreeHeight> d{};
  int i = 0;
  for (int v : list) d[static_cast<std::size_t>(i++)] = v;
  return d;
}

TEST(Builder, FourPortThreeTreeShape) {
  const FatTreeFabric ft{FatTreeParams(4, 3)};
  EXPECT_EQ(ft.fabric().num_endnodes(), 16u);
  EXPECT_EQ(ft.fabric().num_switches(), 20u);
  // 16 node links + 16 links between levels 1-2 + 16 links between 0-1.
  EXPECT_EQ(ft.fabric().num_links(), 48u);
}

TEST(Builder, NodeIdsArePids) {
  const FatTreeFabric ft{FatTreeParams(4, 3)};
  for (NodeId node = 0; node < 16; ++node) {
    const DeviceId dev = ft.node_device(node);
    EXPECT_EQ(ft.fabric().device(dev).node_id, node);
    EXPECT_EQ(ft.node_label(node).pid(ft.params()), node);
  }
}

TEST(Builder, SpecificWiringSpotChecks) {
  // Paper Figure 5 example, digits restored: in a 4-port 3-tree the node
  // P(111) hangs off SW<11,2> port 2, and SW<11,2>'s up port 3 reaches
  // SW<10,1> whose down port facing back is 2.
  const FatTreeParams p(4, 3);
  const FatTreeFabric ft{p};
  const Fabric& g = ft.fabric();

  const NodeLabel n111 = NodeLabel::from_digits(p, digits({1, 1, 1}));
  const SwitchLabel leaf = SwitchLabel::from_digits(p, 2, digits({1, 1}));
  const PortRef hop = g.peer_of(ft.node_device(n111.pid(p)), 1);
  EXPECT_EQ(hop.device, ft.switch_device(leaf.switch_id(p)));
  EXPECT_EQ(int(hop.port), 2);

  const PortRef up = g.peer_of(ft.switch_device(leaf.switch_id(p)), 3);
  const SwitchLabel parent = SwitchLabel::from_digits(p, 1, digits({1, 0}));
  EXPECT_EQ(up.device, ft.switch_device(parent.switch_id(p)));
  EXPECT_EQ(int(up.port), 2);
}

TEST(Builder, RootRowReachesAllSubtrees) {
  const FatTreeParams p(4, 3);
  const FatTreeFabric ft{p};
  const SwitchLabel root = SwitchLabel::from_digits(p, 0, digits({0, 0}));
  const DeviceId dev = ft.switch_device(root.switch_id(p));
  std::set<int> child_digit0;
  for (PortId port = 1; port <= 4; ++port) {
    const PortRef peer = ft.fabric().peer_of(dev, port);
    ASSERT_TRUE(peer.valid());
    const Device& child = ft.fabric().device(peer.device);
    ASSERT_EQ(child.kind(), DeviceKind::kSwitch);
    const SwitchLabel label = ft.switch_label(child.switch_id);
    EXPECT_EQ(label.level(), 1);
    child_digit0.insert(label.digit(0));
  }
  EXPECT_EQ(child_digit0, (std::set<int>{0, 1, 2, 3}));
}

class BuilderValidation
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BuilderValidation, PassesStructuralValidation) {
  const auto [m, n] = GetParam();
  const FatTreeFabric ft{FatTreeParams(m, n)};
  const ValidationReport report = validate_fat_tree(ft);
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
}

INSTANTIATE_TEST_SUITE_P(Grid, BuilderValidation,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2},
                                           std::pair{4, 5}));

}  // namespace
}  // namespace mlid

// k-ary n-tree family (Petrini & Vanneschi; the paper's reference [10]):
// construction, validation and routing through the shared machinery.
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/registry.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "topology/export.hpp"
#include "topology/validate.hpp"

namespace mlid {
namespace {

TEST(KaryTree, ClosedFormCounts) {
  // A 2-ary 3-tree: 2^3 = 8 nodes, 3 * 2^2 = 12 switches on 4-port gear.
  const FatTreeParams p = FatTreeParams::kary(2, 3);
  EXPECT_EQ(p.family(), TreeFamily::kKaryNTree);
  EXPECT_EQ(p.m(), 4);        // physical switch radix 2k
  EXPECT_EQ(p.half(), 2);     // k
  EXPECT_EQ(p.p0_radix(), 2);
  EXPECT_EQ(p.num_nodes(), 8u);
  EXPECT_EQ(p.num_switches(), 12u);
  for (int l = 0; l < 3; ++l) EXPECT_EQ(p.switches_at_level(l), 4u);
  EXPECT_EQ(int(p.mlid_lmc()), 2);

  // A 4-ary 2-tree: 16 nodes, 8 switches on 8-port gear.
  const FatTreeParams q = FatTreeParams::kary(4, 2);
  EXPECT_EQ(q.num_nodes(), 16u);
  EXPECT_EQ(q.num_switches(), 8u);
}

TEST(KaryTree, RootsUseOnlyTheirDownPorts) {
  const FatTreeParams p = FatTreeParams::kary(2, 2);
  EXPECT_EQ(num_down_ports(p, 0), 2);  // k, not 2k
  EXPECT_EQ(num_up_ports(p, 0), 0);
  EXPECT_EQ(num_down_ports(p, 1), 2);
  EXPECT_EQ(num_up_ports(p, 1), 2);
  // Physical ports 3 and 4 of a root stay unwired.
  const FatTreeFabric fabric(p);
  const Device& root = fabric.fabric().device(fabric.switch_device(0));
  EXPECT_TRUE(root.port_connected(1));
  EXPECT_TRUE(root.port_connected(2));
  EXPECT_FALSE(root.port_connected(3));
  EXPECT_FALSE(root.port_connected(4));
}

TEST(KaryTree, DescribeNamesTheFamily) {
  const FatTreeFabric fabric(FatTreeParams::kary(2, 3));
  const std::string text = describe(fabric);
  EXPECT_NE(text.find("2-ary 3-tree"), std::string::npos);
  EXPECT_NE(text.find("8 processing nodes"), std::string::npos);
}

class KaryGrid : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KaryGrid, StructureValidates) {
  const auto [k, n] = GetParam();
  const FatTreeFabric fabric(FatTreeParams::kary(k, n));
  const ValidationReport report = validate_fat_tree(fabric);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
}

TEST_P(KaryGrid, MlidAndSlidRouteCorrectly) {
  const auto [k, n] = GetParam();
  const FatTreeFabric fabric(FatTreeParams::kary(k, n));
  for (const std::string_view kind : {"SLID", "MLID"}) {
    const auto scheme = make_scheme(kind, fabric);
    const CompiledRoutes routes(fabric, *scheme);
    const RoutingReport report = verify_all_paths(fabric, *scheme, routes);
    for (const auto& problem : report.problems) ADD_FAILURE() << problem;
    EXPECT_TRUE(verify_deadlock_free(fabric, *scheme, routes).ok());
  }
}

TEST_P(KaryGrid, MlidSpreadsOverDistinctLcas) {
  const auto [k, n] = GetParam();
  const FatTreeFabric fabric(FatTreeParams::kary(k, n));
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const RoutingReport report = verify_lca_spreading(fabric, scheme, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
}

TEST_P(KaryGrid, UpDownMatchesMlid) {
  const auto [k, n] = GetParam();
  const FatTreeFabric fabric(FatTreeParams::kary(k, n));
  const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
  const MlidRouting mlid(fabric.params());
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    const Lft a = updn.build_lft(sw);
    const Lft b = mlid.build_lft(sw);
    for (Lid lid = 1; lid <= mlid.max_lid(); ++lid) {
      ASSERT_EQ(int(a.lookup(lid)), int(b.lookup(lid)))
          << "switch " << sw << " lid " << lid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, KaryGrid,
                         ::testing::Values(std::pair{2, 2}, std::pair{2, 3},
                                           std::pair{2, 4}, std::pair{4, 2},
                                           std::pair{4, 3}, std::pair{8, 2}));

TEST(KaryTree, RejectsBadShapes) {
  EXPECT_THROW(FatTreeParams::kary(3, 2), ContractViolation);  // not pow2
  EXPECT_THROW(FatTreeParams::kary(1, 2), ContractViolation);  // degenerate
  EXPECT_THROW(FatTreeParams::kary(2, 1), ContractViolation);  // too flat
}

}  // namespace
}  // namespace mlid

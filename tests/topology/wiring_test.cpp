#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"

namespace mlid {
namespace {

std::array<int, kMaxTreeHeight> digits(std::initializer_list<int> list) {
  std::array<int, kMaxTreeHeight> d{};
  int i = 0;
  for (int v : list) d[static_cast<std::size_t>(i++)] = v;
  return d;
}

TEST(Wiring, LeafAttachmentFollowsThePrefixRule) {
  // SW<w, n-1> hosts P(p) iff w = p0...p(n-2), on tree port p(n-1)
  // (physical p(n-1)+1).
  const FatTreeParams p(4, 3);
  const NodeLabel node = NodeLabel::from_digits(p, digits({1, 1, 1}));
  const SwitchLabel leaf = leaf_switch_of(p, node);
  EXPECT_EQ(leaf, SwitchLabel::from_digits(p, 2, digits({1, 1})));
  EXPECT_EQ(int(leaf_port_of(p, node)), 2);  // tree port 1, shifted by one
  EXPECT_EQ(leaf_node_at(p, leaf, leaf_port_of(p, node)), node);
}

TEST(Wiring, RootsUseAllPortsDownward) {
  const FatTreeParams p(4, 3);
  EXPECT_EQ(num_down_ports(p, 0), 4);
  EXPECT_EQ(num_up_ports(p, 0), 0);
  EXPECT_EQ(num_down_ports(p, 1), 2);
  EXPECT_EQ(num_up_ports(p, 1), 2);
  EXPECT_EQ(num_down_ports(p, 2), 2);
  EXPECT_EQ(num_up_ports(p, 2), 2);
}

TEST(Wiring, RootChildrenDifferAtDigitZero) {
  const FatTreeParams p(4, 3);
  const SwitchLabel root = SwitchLabel::from_digits(p, 0, digits({0, 1}));
  // Tree port k (physical k+1) reaches the level-1 switch with digit0 = k.
  for (int k = 0; k < 4; ++k) {
    const SwitchLabel child =
        child_through_port(p, root, static_cast<PortId>(k + 1));
    EXPECT_EQ(child.level(), 1);
    EXPECT_EQ(child.digit(0), k);
    EXPECT_EQ(child.digit(1), 1);  // all other digits preserved
  }
}

TEST(Wiring, ParentChildPortsAreMutuallyConsistent) {
  const FatTreeParams p(4, 3);
  const SwitchLabel child = SwitchLabel::from_digits(p, 2, digits({3, 1}));
  // The child's up port (m/2 + d + 1) reaches the parent with digit d at
  // position level-1.
  for (int d = 0; d < p.half(); ++d) {
    const auto up_port = static_cast<PortId>(p.half() + d + 1);
    const SwitchLabel parent = parent_through_port(p, child, up_port);
    EXPECT_EQ(parent.level(), 1);
    EXPECT_EQ(parent.digit(0), 3);
    EXPECT_EQ(parent.digit(1), d);
    EXPECT_EQ(child_facing_port(p, child, parent), up_port);
    EXPECT_EQ(child_through_port(p, parent,
                                 parent_facing_port(p, parent, child)),
              child);
  }
}

TEST(Wiring, RejectsWrongPortClasses) {
  const FatTreeParams p(4, 3);
  const SwitchLabel root = SwitchLabel::from_digits(p, 0, digits({0, 0}));
  const SwitchLabel leaf = SwitchLabel::from_digits(p, 2, digits({0, 0}));
  EXPECT_THROW(parent_through_port(p, root, PortId{3}), ContractViolation);
  EXPECT_THROW(child_through_port(p, leaf, PortId{1}), ContractViolation);
  EXPECT_THROW(leaf_node_at(p, root, PortId{1}), ContractViolation);
  // Down ports of an inner switch are 1..m/2 only.
  const SwitchLabel inner = SwitchLabel::from_digits(p, 1, digits({0, 0}));
  EXPECT_THROW(child_through_port(p, inner, PortId{3}), ContractViolation);
  EXPECT_THROW(parent_through_port(p, inner, PortId{2}), ContractViolation);
}

class WiringProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WiringProperty, UpDownRoundTripForEverySwitch) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  for (SwitchId id = 0; id < p.num_switches(); ++id) {
    const SwitchLabel sw = switch_from_id(p, id);
    if (sw.level() >= 1) {
      for (int u = 0; u < num_up_ports(p, sw.level()); ++u) {
        const auto port = static_cast<PortId>(p.half() + u + 1);
        const SwitchLabel parent = parent_through_port(p, sw, port);
        EXPECT_EQ(parent.level(), sw.level() - 1);
        EXPECT_EQ(child_through_port(p, parent,
                                     parent_facing_port(p, parent, sw)),
                  sw);
        EXPECT_EQ(child_facing_port(p, sw, parent), port);
      }
    }
    if (sw.level() < p.n() - 1) {
      for (int d = 0; d < num_down_ports(p, sw.level()); ++d) {
        const auto port = static_cast<PortId>(d + 1);
        const SwitchLabel child = child_through_port(p, sw, port);
        EXPECT_EQ(child.level(), sw.level() + 1);
        EXPECT_EQ(parent_through_port(p, child,
                                      child_facing_port(p, child, sw)),
                  sw);
      }
    }
  }
}

TEST_P(WiringProperty, EveryNodeHasAUniqueLeafAttachment) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  std::set<std::pair<SwitchId, PortId>> attachments;
  for (std::uint32_t pid = 0; pid < p.num_nodes(); ++pid) {
    const NodeLabel node = NodeLabel::from_pid(p, pid);
    const SwitchLabel leaf = leaf_switch_of(p, node);
    EXPECT_EQ(leaf.level(), p.n() - 1);
    const PortId port = leaf_port_of(p, node);
    EXPECT_TRUE(attachments.emplace(leaf.switch_id(p), port).second)
        << "two nodes share a leaf port";
    EXPECT_EQ(leaf_node_at(p, leaf, port).pid(p), pid);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, WiringProperty,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2}));

}  // namespace
}  // namespace mlid

#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"

namespace mlid {
namespace {

std::array<int, kMaxTreeHeight> digits(std::initializer_list<int> list) {
  std::array<int, kMaxTreeHeight> d{};
  int i = 0;
  for (int v : list) d[static_cast<std::size_t>(i++)] = v;
  return d;
}

TEST(NodeLabel, PaperPidExamples) {
  // Section 3 (digits restored): PID(P(100)) = 4 and PID(P(111)) = 7 in a
  // 4-port 3-tree.
  const FatTreeParams p(4, 3);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({1, 0, 0})).pid(p), 4u);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({1, 1, 1})).pid(p), 7u);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({0, 0, 0})).pid(p), 0u);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({3, 1, 1})).pid(p), 15u);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({0, 1, 0})).pid(p), 2u);
}

TEST(NodeLabel, FirstDigitUsesFullPortRadix) {
  // p0 ranges over [0, m), the rest over [0, m/2).
  const FatTreeParams p(4, 3);
  EXPECT_NO_THROW(NodeLabel::from_digits(p, digits({3, 1, 1})));
  EXPECT_THROW(NodeLabel::from_digits(p, digits({4, 0, 0})),
               ContractViolation);
  EXPECT_THROW(NodeLabel::from_digits(p, digits({0, 2, 0})),
               ContractViolation);
  EXPECT_THROW(NodeLabel::from_digits(p, digits({0, 0, 2})),
               ContractViolation);
}

TEST(NodeLabel, ToString) {
  const FatTreeParams p(4, 3);
  EXPECT_EQ(NodeLabel::from_digits(p, digits({1, 0, 1})).to_string(),
            "P(101)");
}

TEST(SwitchLabel, RootsDrawEveryDigitFromHalfRadix) {
  const FatTreeParams p(4, 3);
  EXPECT_NO_THROW(SwitchLabel::from_digits(p, 0, digits({1, 1})));
  EXPECT_THROW(SwitchLabel::from_digits(p, 0, digits({2, 0})),
               ContractViolation);
  // Levels >= 1 allow w0 in [0, m).
  EXPECT_NO_THROW(SwitchLabel::from_digits(p, 1, digits({3, 1})));
  EXPECT_THROW(SwitchLabel::from_digits(p, 1, digits({0, 2})),
               ContractViolation);
}

TEST(SwitchLabel, ToString) {
  const FatTreeParams p(4, 3);
  EXPECT_EQ(SwitchLabel::from_digits(p, 2, digits({3, 1})).to_string(),
            "SW<31,2>");
}

TEST(SwitchLabel, GlobalIdsAreDenseAndLevelMajor) {
  const FatTreeParams p(4, 3);
  // 4 roots first, then 8 level-1 switches, then 8 leaves.
  EXPECT_EQ(SwitchLabel::from_digits(p, 0, digits({0, 0})).switch_id(p), 0u);
  EXPECT_EQ(SwitchLabel::from_digits(p, 0, digits({1, 1})).switch_id(p), 3u);
  EXPECT_EQ(SwitchLabel::from_digits(p, 1, digits({0, 0})).switch_id(p), 4u);
  EXPECT_EQ(SwitchLabel::from_digits(p, 2, digits({3, 1})).switch_id(p), 19u);
}

class LabelRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LabelRoundTrip, PidBijection) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  for (std::uint32_t pid = 0; pid < p.num_nodes(); ++pid) {
    const NodeLabel label = NodeLabel::from_pid(p, pid);
    EXPECT_EQ(label.pid(p), pid);
    // PIDs enumerate labels lexicographically.
    if (pid > 0) {
      const NodeLabel prev = NodeLabel::from_pid(p, pid - 1);
      bool greater = false;
      for (int i = 0; i < n; ++i) {
        if (prev.digit(i) != label.digit(i)) {
          greater = prev.digit(i) < label.digit(i);
          break;
        }
      }
      EXPECT_TRUE(greater) << "PID order must be lexicographic";
    }
  }
  EXPECT_THROW(NodeLabel::from_pid(p, p.num_nodes()), ContractViolation);
}

TEST_P(LabelRoundTrip, SwitchIdBijection) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  for (SwitchId id = 0; id < p.num_switches(); ++id) {
    const SwitchLabel label = switch_from_id(p, id);
    EXPECT_EQ(label.switch_id(p), id);
    EXPECT_EQ(SwitchLabel::from_index(p, label.level(),
                                      label.index_in_level(p)),
              label);
  }
  EXPECT_THROW(switch_from_id(p, p.num_switches()), ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(Grid, LabelRoundTrip,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2}));

}  // namespace
}  // namespace mlid

#include "topology/fabric.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

TEST(Fabric, DeviceCreation) {
  Fabric g;
  const DeviceId node = g.add_endnode("n0");
  const DeviceId sw = g.add_switch(4, "s0");
  EXPECT_EQ(g.num_devices(), 2u);
  EXPECT_EQ(g.num_endnodes(), 1u);
  EXPECT_EQ(g.num_switches(), 1u);
  EXPECT_EQ(g.device(node).kind(), DeviceKind::kEndnode);
  EXPECT_EQ(g.device(node).num_ports(), 1);
  EXPECT_EQ(g.device(sw).kind(), DeviceKind::kSwitch);
  EXPECT_EQ(g.device(sw).num_ports(), 4);
  EXPECT_EQ(g.device(sw).name(), "s0");
}

TEST(Fabric, ConnectIsSymmetric) {
  Fabric g;
  const DeviceId a = g.add_switch(4, "a");
  const DeviceId b = g.add_switch(4, "b");
  g.connect(a, 2, b, 3);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.peer_of(a, 2), (PortRef{b, 3}));
  EXPECT_EQ(g.peer_of(b, 3), (PortRef{a, 2}));
  EXPECT_TRUE(g.device(a).port_connected(2));
  EXPECT_FALSE(g.device(a).port_connected(1));
}

TEST(Fabric, RejectsInvalidConnections) {
  Fabric g;
  const DeviceId a = g.add_switch(4, "a");
  const DeviceId b = g.add_switch(4, "b");
  EXPECT_THROW(g.connect(a, 0, b, 1), ContractViolation);  // mgmt port
  EXPECT_THROW(g.connect(a, 5, b, 1), ContractViolation);  // out of range
  EXPECT_THROW(g.connect(a, 1, 99, 1), ContractViolation); // no such device
  EXPECT_THROW(g.connect(a, 1, a, 1), ContractViolation);  // self-loop port
  g.connect(a, 1, b, 1);
  EXPECT_THROW(g.connect(a, 1, b, 2), ContractViolation);  // port a in use
  EXPECT_THROW(g.connect(a, 2, b, 1), ContractViolation);  // port b in use
}

TEST(Fabric, AllowsLoopbackBetweenDistinctPorts) {
  // Two ports of the same switch may be cabled together (valid in IB).
  Fabric g;
  const DeviceId a = g.add_switch(4, "a");
  g.connect(a, 1, a, 2);
  EXPECT_EQ(g.peer_of(a, 1), (PortRef{a, 2}));
  EXPECT_EQ(g.peer_of(a, 2), (PortRef{a, 1}));
}

TEST(Fabric, PortRefValidity) {
  PortRef unset;
  EXPECT_FALSE(unset.valid());
  PortRef set{3, 1};
  EXPECT_TRUE(set.valid());
}

TEST(Fabric, RejectsAbsurdPortCounts) {
  Fabric g;
  EXPECT_THROW(g.add_switch(0, "zero"), ContractViolation);
  EXPECT_THROW(g.add_switch(255, "too-many"), ContractViolation);
}

}  // namespace
}  // namespace mlid

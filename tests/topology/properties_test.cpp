#include "topology/properties.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mlid {
namespace {

std::array<int, kMaxTreeHeight> digits(std::initializer_list<int> list) {
  std::array<int, kMaxTreeHeight> d{};
  int i = 0;
  for (int v : list) d[static_cast<std::size_t>(i++)] = v;
  return d;
}

// The paper's Section 3 running example (4-port 3-tree, digits restored):
// gcp(P(100), P(111)) = "1", lca = {SW<10,1>, SW<11,1>}, both nodes are in
// gcpg(1, 1) which has 4 members, their ranks are 0 and 3, and their PIDs
// are 4 and 7.
TEST(Properties, PaperRunningExample) {
  const FatTreeParams p(4, 3);
  const NodeLabel a = NodeLabel::from_digits(p, digits({1, 0, 0}));
  const NodeLabel b = NodeLabel::from_digits(p, digits({1, 1, 1}));
  EXPECT_EQ(gcp_length(p, a, b), 1);

  const auto lcas = least_common_ancestors(p, a, b);
  ASSERT_EQ(lcas.size(), 2u);
  const std::set<std::string> names{lcas[0].to_string(), lcas[1].to_string()};
  EXPECT_EQ(names, (std::set<std::string>{"SW<10,1>", "SW<11,1>"}));

  EXPECT_EQ(gcp_group_size(p, 1), 4u);
  const auto group = gcp_group(p, a, 1);
  ASSERT_EQ(group.size(), 4u);
  EXPECT_EQ(group[0].to_string(), "P(100)");
  EXPECT_EQ(group[3].to_string(), "P(111)");

  EXPECT_EQ(rank_in_group(p, a, 1), 0u);
  EXPECT_EQ(rank_in_group(p, b, 1), 3u);
  EXPECT_EQ(a.pid(p), 4u);
  EXPECT_EQ(b.pid(p), 7u);
}

TEST(Properties, GcpOfIdenticalNodesIsFullLength) {
  const FatTreeParams p(4, 3);
  const NodeLabel a = NodeLabel::from_digits(p, digits({2, 1, 0}));
  EXPECT_EQ(gcp_length(p, a, a), 3);
  EXPECT_THROW(least_common_ancestors(p, a, a), ContractViolation);
}

TEST(Properties, NoCommonPrefixMeansRootLcas) {
  const FatTreeParams p(4, 3);
  const NodeLabel a = NodeLabel::from_digits(p, digits({0, 0, 0}));
  const NodeLabel b = NodeLabel::from_digits(p, digits({1, 0, 0}));
  EXPECT_EQ(gcp_length(p, a, b), 0);
  const auto lcas = least_common_ancestors(p, a, b);
  EXPECT_EQ(lcas.size(), 4u);  // all (m/2)^(n-1) roots
  for (const auto& sw : lcas) EXPECT_EQ(sw.level(), 0);
}

TEST(Properties, GroupSizeAlphaZeroIsAllNodes) {
  const FatTreeParams p(4, 3);
  EXPECT_EQ(gcp_group_size(p, 0), 16u);
  EXPECT_EQ(gcp_group(p, NodeLabel::from_pid(p, 0), 0).size(), 16u);
  EXPECT_EQ(gcp_group_size(p, 3), 1u);
}

TEST(Properties, ReachableDownward) {
  const FatTreeParams p(4, 3);
  const NodeLabel node = NodeLabel::from_digits(p, digits({1, 0, 1}));
  // Any root reaches everything.
  EXPECT_TRUE(reachable_downward(
      p, SwitchLabel::from_digits(p, 0, digits({1, 1})), node));
  // Level 1 requires digit 0 to match.
  EXPECT_TRUE(reachable_downward(
      p, SwitchLabel::from_digits(p, 1, digits({1, 0})), node));
  EXPECT_FALSE(reachable_downward(
      p, SwitchLabel::from_digits(p, 1, digits({2, 0})), node));
  // Leaf requires both prefix digits.
  EXPECT_TRUE(reachable_downward(
      p, SwitchLabel::from_digits(p, 2, digits({1, 0})), node));
  EXPECT_FALSE(reachable_downward(
      p, SwitchLabel::from_digits(p, 2, digits({1, 1})), node));
}

TEST(Properties, MinPathLinks) {
  const FatTreeParams p(4, 3);
  const NodeLabel a = NodeLabel::from_digits(p, digits({0, 0, 0}));
  EXPECT_EQ(min_path_links(p, a, a), 0);
  // Same leaf switch: node -> leaf -> node.
  EXPECT_EQ(min_path_links(p, a, NodeLabel::from_digits(p, digits({0, 0, 1}))),
            2);
  // No common prefix: up to a root and back down: 2n links.
  EXPECT_EQ(min_path_links(p, a, NodeLabel::from_digits(p, digits({3, 1, 1}))),
            6);
}

class PropertiesSweep : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(PropertiesSweep, RanksAreABijectionWithinEveryGroup) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  for (int alpha = 0; alpha < n; ++alpha) {
    // Every group partition: collect (prefix, rank) pairs over all nodes;
    // ranks within a group must be unique and dense [0, group size).
    std::map<std::uint32_t, std::set<std::uint32_t>> ranks_by_prefix;
    for (std::uint32_t pid = 0; pid < p.num_nodes(); ++pid) {
      const NodeLabel node = NodeLabel::from_pid(p, pid);
      const std::uint32_t rank = rank_in_group(p, node, alpha);
      const std::uint32_t prefix = pid - rank;  // zeroes the free digits
      EXPECT_TRUE(ranks_by_prefix[prefix].insert(rank).second)
          << "duplicate rank in a group";
    }
    for (const auto& [prefix, ranks] : ranks_by_prefix) {
      EXPECT_EQ(ranks.size(), gcp_group_size(p, alpha));
      EXPECT_EQ(*ranks.begin(), 0u);
      EXPECT_EQ(*ranks.rbegin(), gcp_group_size(p, alpha) - 1);
    }
  }
}

TEST_P(PropertiesSweep, LcaCountMatchesClosedForm) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  // Sample pairs; exhaustive for small networks.
  const std::uint32_t stride = p.num_nodes() > 64 ? 7 : 1;
  for (std::uint32_t a = 0; a < p.num_nodes(); a += stride) {
    for (std::uint32_t b = 0; b < p.num_nodes(); b += stride) {
      if (a == b) continue;
      const NodeLabel la = NodeLabel::from_pid(p, a);
      const NodeLabel lb = NodeLabel::from_pid(p, b);
      const auto lcas = least_common_ancestors(p, la, lb);
      EXPECT_EQ(lcas.size(), num_least_common_ancestors(p, la, lb));
      const int alpha = gcp_length(p, la, lb);
      for (const auto& sw : lcas) {
        EXPECT_EQ(sw.level(), alpha);
        EXPECT_TRUE(reachable_downward(p, sw, la));
        EXPECT_TRUE(reachable_downward(p, sw, lb));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PropertiesSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2}));

}  // namespace
}  // namespace mlid

#include "topology/fat_tree.hpp"

#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"

namespace mlid {
namespace {

TEST(FatTreeParams, PaperExampleCounts4Port2Tree) {
  // Figure 4 of the paper: a 4-port 2-tree has 8 nodes and 6 switches.
  const FatTreeParams p(4, 2);
  EXPECT_EQ(p.num_nodes(), 8u);
  EXPECT_EQ(p.num_switches(), 6u);
  EXPECT_EQ(p.switches_at_level(0), 2u);
  EXPECT_EQ(p.switches_at_level(1), 4u);
  EXPECT_EQ(int(p.mlid_lmc()), 1);
  EXPECT_EQ(p.paths_per_pair(), 2u);
}

TEST(FatTreeParams, PaperExampleCounts4Port3Tree) {
  // Section 3's running example: 16 nodes, 20 switches, 4 roots.
  const FatTreeParams p(4, 3);
  EXPECT_EQ(p.num_nodes(), 16u);
  EXPECT_EQ(p.num_switches(), 20u);
  EXPECT_EQ(p.switches_at_level(0), 4u);
  EXPECT_EQ(p.switches_at_level(1), 8u);
  EXPECT_EQ(p.switches_at_level(2), 8u);
  EXPECT_EQ(int(p.mlid_lmc()), 2);
  EXPECT_EQ(p.paths_per_pair(), 4u);
}

TEST(FatTreeParams, EightPortCounts) {
  const FatTreeParams p2(8, 2);
  EXPECT_EQ(p2.num_nodes(), 32u);   // 2 * 4^2
  EXPECT_EQ(p2.num_switches(), 12u);  // 3 * 4
  const FatTreeParams p3(8, 3);
  EXPECT_EQ(p3.num_nodes(), 128u);  // 2 * 4^3
  EXPECT_EQ(p3.num_switches(), 80u);  // 5 * 16
  EXPECT_EQ(int(p3.mlid_lmc()), 4);
}

TEST(FatTreeParams, LevelOffsetsPartitionTheIdSpace) {
  const FatTreeParams p(8, 3);
  EXPECT_EQ(p.level_offset(0), 0u);
  EXPECT_EQ(p.level_offset(1), 16u);
  EXPECT_EQ(p.level_offset(2), 48u);
  EXPECT_EQ(p.level_offset(2) + p.switches_at_level(2), p.num_switches());
}

TEST(FatTreeParams, DigitRadixes) {
  const FatTreeParams p(8, 3);
  EXPECT_EQ(p.node_digit_radix(0), 8);
  EXPECT_EQ(p.node_digit_radix(1), 4);
  EXPECT_EQ(p.node_digit_radix(2), 4);
  // Roots draw every digit from [0, m/2); lower levels free digit 0 to m.
  EXPECT_EQ(p.switch_digit_radix(0, 0), 4);
  EXPECT_EQ(p.switch_digit_radix(0, 1), 4);
  EXPECT_EQ(p.switch_digit_radix(1, 0), 8);
  EXPECT_EQ(p.switch_digit_radix(2, 0), 8);
  EXPECT_EQ(p.switch_digit_radix(2, 1), 4);
}

TEST(FatTreeParams, RejectsInvalidShapes) {
  EXPECT_THROW(FatTreeParams(3, 2), ContractViolation);   // not a power of 2
  EXPECT_THROW(FatTreeParams(6, 2), ContractViolation);   // not a power of 2
  EXPECT_THROW(FatTreeParams(2, 2), ContractViolation);   // m/2 < 2
  EXPECT_THROW(FatTreeParams(4, 1), ContractViolation);   // height < 2
  EXPECT_THROW(FatTreeParams(4, 99), ContractViolation);  // above kMaxTreeHeight
}

TEST(FatTreeParams, LidSpaceIsASchemeConstraintNotAStructuralOne) {
  // A 16-port 3-tree needs 2*8^3 = 1024 nodes x 2^6 LIDs = 65536 LIDs
  // under *full MLID*, one more than the 16-bit space allows (LID 0 is
  // reserved).  The tree itself is perfectly buildable -- scale fabrics
  // run under SLID or a reduced LMC -- so the params construct fine and
  // the full-MLID scheme is what gets rejected.
  EXPECT_NO_THROW(FatTreeParams(16, 3));
  EXPECT_NO_THROW(FatTreeParams(16, 4));
  EXPECT_NO_THROW(FatTreeParams(16, 2));
  EXPECT_THROW(MlidRouting{FatTreeParams(16, 3)}, ContractViolation);
  EXPECT_NO_THROW(SlidRouting{FatTreeParams(16, 3)});
  EXPECT_NO_THROW(PartialMlidRouting(FatTreeParams(16, 4), Lmc{2}));
  EXPECT_THROW(PartialMlidRouting(FatTreeParams(16, 4), Lmc{4}),
               ContractViolation);
}

/// Property sweep across the whole experiment grid.
class ParamsInvariants
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ParamsInvariants, ClosedFormsAreConsistent) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  const auto half = static_cast<std::uint64_t>(m / 2);
  EXPECT_EQ(p.num_nodes(), 2 * ipow(half, n));
  EXPECT_EQ(p.num_switches(),
            static_cast<std::uint64_t>(2 * n - 1) * ipow(half, n - 1));
  // LIDs per node equals the number of roots reachable from a leaf.
  EXPECT_EQ(p.paths_per_pair(), ipow(half, n - 1));
  // Port budget balances: down ports at level l+1 == up ports wired from
  // level l+1, and the node ports match the node count.
  std::uint64_t node_ports = p.switches_at_level(n - 1) *
                             static_cast<std::uint64_t>(num_down_ports(p, n - 1));
  EXPECT_EQ(node_ports, p.num_nodes());
  for (int l = 0; l + 1 < n; ++l) {
    const std::uint64_t down = p.switches_at_level(l) *
                               static_cast<std::uint64_t>(num_down_ports(p, l));
    const std::uint64_t up =
        p.switches_at_level(l + 1) *
        static_cast<std::uint64_t>(num_up_ports(p, l + 1));
    EXPECT_EQ(down, up) << "between levels " << l << " and " << l + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamsInvariants,
    ::testing::Values(std::pair{4, 2}, std::pair{4, 3}, std::pair{4, 4},
                      std::pair{8, 2}, std::pair{8, 3}, std::pair{16, 2},
                      std::pair{32, 2}, std::pair{4, 5}));

}  // namespace
}  // namespace mlid

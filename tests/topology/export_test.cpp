#include "topology/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mlid {
namespace {

TEST(Export, DotContainsEveryDeviceAndLink) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const std::string dot = to_dot(ft);
  EXPECT_EQ(dot.rfind("graph ibft {", 0), 0u);
  for (SwitchId sw = 0; sw < 6; ++sw) {
    EXPECT_NE(dot.find("sw" + std::to_string(sw) + " ["), std::string::npos);
  }
  for (NodeId node = 0; node < 8; ++node) {
    EXPECT_NE(dot.find("n" + std::to_string(node) + " ["), std::string::npos);
  }
  // One " -- " edge per link.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, ft.fabric().num_links());
}

TEST(Export, LinksCsvHasHeaderAndOneRowPerLink) {
  const FatTreeFabric ft{FatTreeParams(4, 2)};
  const std::string csv = links_csv(ft);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "device_a,port_a,device_b,port_b");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, ft.fabric().num_links());
}

TEST(Export, DescribeMentionsTheKeyNumbers) {
  const FatTreeFabric ft{FatTreeParams(4, 3)};
  const std::string text = describe(ft);
  EXPECT_NE(text.find("IBFT(4, 3)"), std::string::npos);
  EXPECT_NE(text.find("16 processing nodes"), std::string::npos);
  EXPECT_NE(text.find("20 switches"), std::string::npos);
  EXPECT_NE(text.find("LMC 2"), std::string::npos);
  EXPECT_NE(text.find("4 paths per node pair"), std::string::npos);
}

}  // namespace
}  // namespace mlid
